//! Multi-tenant nemesis: per-volume workloads under the fault schedule.
//!
//! Each tenant mounts its own volume (isolated namespace, own inode-id band,
//! quota record, QoS bucket) and drives the same seeded op streams the base
//! nemesis uses, while the seed-derived fault schedule kills, isolates, and
//! degrades replicas underneath all of them. Two oracles judge the run:
//!
//! 1. The per-thread **divergence oracle** (shared with the base nemesis):
//!    every tenant thread's surviving history must be explainable by the
//!    reference model, and the healed namespace must match a candidate.
//! 2. The **isolation oracle**: walking a volume after heal, every inode id
//!    visible anywhere in its namespace must lie inside that volume's id
//!    band — a cross-tenant key leaking through a shard split, migration, or
//!    recovery path is a violation even if both tenants' histories check
//!    out individually. The default volume must stay empty: no tenant op
//!    may escape into the shared root namespace.
//!
//! A failing seed reproduces with `CFS_SIM_SEED=<seed>` exactly like the
//! base sweep.

use std::time::{Duration, Instant};

use cfs_core::{CfsCluster, CfsConfig, FileSystem};
use cfs_rpc::SimRng;
use cfs_types::{FsError, InodeId, VolumeId};

use crate::model::Model;
use crate::nemesis::{
    apply_fault, check_thread_history_under, generate_ops_under, heal_cluster, revert_fault,
    sleep_until, walk_subtree, Divergence, NemOp, NemesisSchedule,
};

/// Tenants (volumes) driven per run.
pub const TENANTS: usize = 2;
/// Workload threads per tenant.
pub const THREADS_PER_TENANT: usize = 2;

/// Stream label carving the tenant workload's pacing RNG out of the seed
/// (distinct from the base nemesis labels so the same seed draws fresh
/// streams here).
const LBL_TENANT_PACE: u64 = 0x7e4a_0001;

/// The per-tenant inode quota for nemesis runs: high enough that the
/// workload never hits it (quota *rejections* are exercised by dedicated
/// tests), low enough that the charge/release path runs on every op.
const NEMESIS_INODE_LIMIT: i64 = 100_000;

/// The subtree root owned by tenant thread `t` (inside its volume's
/// namespace — both tenants use the same paths, which is itself part of the
/// isolation story).
pub fn tenant_thread_root(t: usize) -> String {
    format!("/nem/c{t}")
}

/// One isolation violation: a key visible where it must not be.
#[derive(Clone, Debug)]
pub struct IsolationViolation {
    /// The tenant whose namespace surfaced the foreign key (`None`: the
    /// default volume surfaced tenant data).
    pub volume: Option<u16>,
    /// Human-readable explanation.
    pub detail: String,
}

/// Everything a tenant nemesis run yields.
pub struct TenantReport {
    /// The seed the run derived from.
    pub seed: u64,
    /// First divergence found across all tenant threads, if any.
    pub divergence: Option<Divergence>,
    /// Cross-tenant isolation violations (empty on a clean run).
    pub isolation: Vec<IsolationViolation>,
    /// Per-tenant `(inodes, bytes)` quota usage read back after heal.
    pub usage: Vec<(i64, i64)>,
}

/// Walks `root` collecting every visible `(path, inode id)`, retrying
/// transient errors (the cluster has healed).
fn walk_ids(fs: &impl FileSystem, root: &str) -> Vec<(String, InodeId)> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_string()];
    let deadline = Instant::now() + Duration::from_secs(30);
    while let Some(dir) = stack.pop() {
        let entries = loop {
            match fs.readdir(&dir) {
                Ok(es) => break es,
                Err(e) if e.is_retryable() && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("readdir {dir} after heal failed: {e:?}"),
            }
        };
        for e in entries {
            let path = format!("{}/{}", dir.trim_end_matches('/'), e.name);
            if e.ftype == cfs_types::FileType::Dir {
                stack.push(path.clone());
            }
            out.push((path, e.ino));
        }
    }
    out
}

/// Boots a `test_small` cluster, creates [`TENANTS`] volumes, drives the
/// seed-derived per-tenant workloads under the seed-derived fault schedule,
/// heals, and runs both oracles.
pub fn run_tenant_nemesis(seed: u64, ops_per_thread: usize) -> TenantReport {
    let mut config = CfsConfig::test_small();
    config.net.seed = seed;
    let schedule = NemesisSchedule::generate(
        seed,
        config.taf_shards,
        config.filestore_nodes,
        config.replication,
    );

    let cluster = CfsCluster::start(config).expect("cluster boot");

    // One volume per tenant, each with a (generous) inode quota so every
    // create/unlink runs the charge/release path through the merge fields.
    let registry = cluster.volumes();
    let vols: Vec<VolumeId> = (0..TENANTS)
        .map(|i| {
            registry
                .create(&format!("tenant{i}"), Some(NEMESIS_INODE_LIMIT), None)
                .expect("create tenant volume")
                .id
        })
        .collect();

    // Pre-create the per-thread roots in every tenant namespace before any
    // fault opens.
    for &v in &vols {
        let setup = cluster.client_for_volume(v);
        setup.mkdir("/nem").expect("setup mkdir /nem");
        for t in 0..THREADS_PER_TENANT {
            setup
                .mkdir(&tenant_thread_root(t))
                .expect("setup thread root");
        }
    }

    // Per-(tenant, thread) op streams: pure functions of the seed. Both
    // tenants draw *distinct* streams (stream index = tenant*threads+t) over
    // the *same* path universe, so colliding names across tenants are the
    // norm, not the exception.
    let streams: Vec<Vec<Vec<NemOp>>> = (0..TENANTS)
        .map(|v| {
            (0..THREADS_PER_TENANT)
                .map(|t| {
                    generate_ops_under(
                        seed,
                        v * THREADS_PER_TENANT + t,
                        ops_per_thread,
                        &tenant_thread_root(t),
                    )
                })
                .collect()
        })
        .collect();
    let pace_rng = SimRng::from_seed(seed).split(LBL_TENANT_PACE);

    let start = Instant::now();
    let results: Vec<Vec<Vec<Result<(), FsError>>>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (v, tenant_ops) in streams.iter().enumerate() {
            for (t, ops) in tenant_ops.iter().enumerate() {
                // QoS admission is live on every tenant client; the default
                // share (2000 ops/s) never throttles this workload, it just
                // keeps the admission path under fault coverage.
                let client = cluster.client_for_volume(vols[v]);
                let mut pace = pace_rng.split(v as u64 + 1).split(t as u64 + 1);
                handles.push(scope.spawn(move || {
                    ops.iter()
                        .map(|op| {
                            std::thread::sleep(Duration::from_millis(4 + pace.below(12)));
                            crate::nemesis::apply_fs(&client, op)
                        })
                        .collect::<Vec<_>>()
                }));
            }
        }

        // The nemesis: walk the schedule on this thread.
        for w in &schedule.windows {
            sleep_until(start, w.start_ms);
            let active = apply_fault(&cluster, start, w);
            sleep_until(start, w.end_ms);
            revert_fault(&cluster, &active);
        }

        let mut per_thread = handles
            .into_iter()
            .map(|h| h.join().expect("workload thread"));
        (0..TENANTS)
            .map(|_| {
                (0..THREADS_PER_TENANT)
                    .map(|_| per_thread.next().unwrap())
                    .collect()
            })
            .collect()
    });

    heal_cluster(&cluster);

    // Let abandoned proposals land before the final reads (same settling
    // logic as the base nemesis).
    let any_abandoned = results
        .iter()
        .flatten()
        .flatten()
        .any(|r| matches!(r, Err(e) if e.is_retryable()));
    if any_abandoned {
        std::thread::sleep(Duration::from_secs(6));
    }

    // Oracle 1: per-tenant-thread divergence check.
    let mut divergence = None;
    'outer: for (v, tenant_ops) in streams.iter().enumerate() {
        let walker = cluster.client_for_volume_unlimited(vols[v]);
        for (t, ops) in tenant_ops.iter().enumerate() {
            let root = tenant_thread_root(t);
            let observed = walk_subtree(&walker, &root);
            let thread = v * THREADS_PER_TENANT + t;
            if let Err(d) =
                check_thread_history_under(thread, &root, ops, &results[v][t], &observed)
            {
                divergence = Some(d);
                break 'outer;
            }
        }
    }

    // Oracle 2: isolation. Every inode id visible inside a tenant's
    // namespace must lie in that volume's band, and the default volume's
    // root must have stayed empty.
    let mut isolation = Vec::new();
    for (i, &v) in vols.iter().enumerate() {
        let walker = cluster.client_for_volume_unlimited(v);
        for (path, ino) in walk_ids(&walker, "/") {
            if ino.volume() != v {
                isolation.push(IsolationViolation {
                    volume: Some(v.0),
                    detail: format!(
                        "tenant{i} (vol {}) sees {path} with inode {:#x} from volume {}",
                        v.0,
                        ino.raw(),
                        ino.volume().0
                    ),
                });
            }
        }
    }
    let default_client = cluster.client();
    for (path, ino) in walk_ids(&default_client, "/") {
        isolation.push(IsolationViolation {
            volume: None,
            detail: format!(
                "default volume sees {path} (inode {:#x}) — tenant data escaped",
                ino.raw()
            ),
        });
    }

    let usage = vols
        .iter()
        .map(|&v| registry.usage(v).expect("quota usage readback"))
        .collect();

    TenantReport {
        seed,
        divergence,
        isolation,
        usage,
    }
}

/// Replays every tenant thread's issued stream against the reference model
/// to bound how many inodes a clean run can have outstanding — a sanity
/// check used by the sweep to catch quota drift that is *under* the limit
/// but still wrong in sign (usage must never go negative).
pub fn model_final_count(seed: u64, ops_per_thread: usize) -> usize {
    let mut total = 0;
    for v in 0..TENANTS {
        for t in 0..THREADS_PER_TENANT {
            let root = tenant_thread_root(t);
            let mut m = Model::new();
            let mut prefix = String::new();
            for comp in root.trim_start_matches('/').split('/') {
                prefix.push('/');
                prefix.push_str(comp);
                m.mkdir(&prefix).expect("fresh model");
            }
            for op in generate_ops_under(seed, v * THREADS_PER_TENANT + t, ops_per_thread, &root) {
                let _ = apply_model_op(&mut m, &op);
            }
            total += m.subtree(&root).len();
        }
    }
    total
}

fn apply_model_op(m: &mut Model, op: &NemOp) -> Result<(), FsError> {
    match op {
        NemOp::Create(p) => m.create(p),
        NemOp::Mkdir(p) => m.mkdir(p),
        NemOp::Unlink(p) => m.unlink(p),
        NemOp::Rmdir(p) => m.rmdir(p),
        NemOp::Rename(s, d) => m.rename(s, d),
        NemOp::Setattr(p) => m.setattr(p),
        NemOp::Lookup(p) => m.lookup(p),
    }
}

/// Formats a report's violations for a panic message.
pub fn isolation_summary(report: &TenantReport) -> String {
    report
        .isolation
        .iter()
        .map(|v| format!("  {}\n", v.detail))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_streams_are_pure_and_distinct_per_tenant() {
        let a = generate_ops_under(5, 0, 30, &tenant_thread_root(0));
        let b = generate_ops_under(5, 0, 30, &tenant_thread_root(0));
        assert_eq!(a, b);
        // Tenant 1's thread 0 draws stream index THREADS_PER_TENANT — a
        // different stream over the same path universe.
        let c = generate_ops_under(5, THREADS_PER_TENANT, 30, &tenant_thread_root(0));
        assert_ne!(a, c);
    }

    #[test]
    fn model_final_count_is_deterministic() {
        assert_eq!(model_final_count(9, 40), model_final_count(9, 40));
        assert!(model_final_count(9, 40) >= TENANTS * THREADS_PER_TENANT);
    }
}

//! Synthetic production traces tr-0 / tr-1 / tr-2.
//!
//! The paper's three real-world traces are proprietary, but §5.8 publishes
//! everything that matters for replay: the file-system-call composition
//! (Table 3) and the file/IO size distributions (Figure 14). The generator
//! samples from those published marginals; the replayer executes the
//! resulting call stream against any [`FileSystem`] with data access enabled,
//! which is exactly the Figure 15 experiment.

use std::time::Instant;

use cfs_core::FileSystem;
use cfs_filestore::SetAttrPatch;
use cfs_types::FsResult;
use rand::{RngExt, SeedableRng};

use crate::metrics::Histogram;
use crate::runner::BenchResult;

/// Which production trace to synthesize.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// Read-only: 51.8% stat, 24.4% open, 17.8% read, 6.0% opendir.
    Tr0,
    /// Read-intensive with writes: 47.2% stat, 13.1% opendir, 11.6% read,
    /// 8.4% open(O_CREAT), 8.2% write, 8.0% unlink, 3.1% open, 0.3% rename.
    Tr1,
    /// Read-intensive with broader metadata updates: 49.3% stat, 19.0%
    /// opendir, 6.3% write, 6.2% open(O_CREAT), 6.2% chmod/chown, 5.6% open,
    /// 5.1% unlink, 1.3% mkdir, 1.0% read.
    Tr2,
}

impl TraceKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Tr0 => "tr-0",
            TraceKind::Tr1 => "tr-1",
            TraceKind::Tr2 => "tr-2",
        }
    }

    /// `(op, weight)` table from Table 3 (file system operations).
    pub fn op_mix(self) -> &'static [(FsOpKind, f64)] {
        match self {
            TraceKind::Tr0 => &[
                (FsOpKind::Stat, 51.8),
                (FsOpKind::Open, 24.4),
                (FsOpKind::Read, 17.8),
                (FsOpKind::Opendir, 6.0),
            ],
            TraceKind::Tr1 => &[
                (FsOpKind::Stat, 47.2),
                (FsOpKind::Opendir, 13.1),
                (FsOpKind::Read, 11.6),
                (FsOpKind::OpenCreat, 8.4),
                (FsOpKind::Write, 8.2),
                (FsOpKind::Unlink, 8.0),
                (FsOpKind::Open, 3.1),
                (FsOpKind::Rename, 0.3),
            ],
            TraceKind::Tr2 => &[
                (FsOpKind::Stat, 49.3),
                (FsOpKind::Opendir, 19.0),
                (FsOpKind::Write, 6.3),
                (FsOpKind::OpenCreat, 6.2),
                (FsOpKind::Chmod, 6.2),
                (FsOpKind::Open, 5.6),
                (FsOpKind::Unlink, 5.1),
                (FsOpKind::Mkdir, 1.3),
                (FsOpKind::Read, 1.0),
            ],
        }
    }

    /// File-size CDF `(size_bytes, cumulative_prob)` approximating Figure 14
    /// (e.g. 75.27% / 91.34% / 87.51% of files ≤ 32 KB).
    pub fn file_size_cdf(self) -> &'static [(u64, f64)] {
        match self {
            TraceKind::Tr0 => &[
                (1 << 10, 0.30),
                (32 << 10, 0.7527),
                (1 << 20, 0.95),
                (16 << 20, 1.0),
            ],
            TraceKind::Tr1 => &[
                (1 << 10, 0.50),
                (32 << 10, 0.9134),
                (1 << 20, 0.98),
                (16 << 20, 1.0),
            ],
            TraceKind::Tr2 => &[
                (1 << 10, 0.42),
                (32 << 10, 0.8751),
                (1 << 20, 0.97),
                (16 << 20, 1.0),
            ],
        }
    }

    /// I/O-size CDF approximating Figure 14 (45.20–70.70% of I/Os ≤ 1 KB,
    /// up to 96.37% ≤ 32 KB).
    pub fn io_size_cdf(self) -> &'static [(u64, f64)] {
        match self {
            TraceKind::Tr0 => &[(1 << 10, 0.452), (32 << 10, 0.92), (256 << 10, 1.0)],
            TraceKind::Tr1 => &[(1 << 10, 0.707), (32 << 10, 0.9637), (256 << 10, 1.0)],
            TraceKind::Tr2 => &[(1 << 10, 0.60), (32 << 10, 0.95), (256 << 10, 1.0)],
        }
    }
}

/// File-system call kinds appearing in the traces.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FsOpKind {
    /// `stat` — one `getattr` metadata op.
    Stat,
    /// `open` (existing file) — one `getattr`.
    Open,
    /// `open(O_CREAT)` — `lookup` + `create`.
    OpenCreat,
    /// `read` — `getattr` + data fetch.
    Read,
    /// `write` — data write (+ size maintenance).
    Write,
    /// `opendir` — `lookup` (+ `readdir`).
    Opendir,
    /// `unlink`.
    Unlink,
    /// `rename`.
    Rename,
    /// `mkdir`.
    Mkdir,
    /// `chmod`/`chown` — `setattr`.
    Chmod,
}

impl FsOpKind {
    /// How many metadata operations this call triggers (paper §5.8: "one
    /// file system operation may trigger multiple metadata operations").
    pub fn metadata_ops(self) -> u64 {
        match self {
            FsOpKind::OpenCreat => 2,
            FsOpKind::Opendir => 2,
            _ => 1,
        }
    }
}

/// One replayable call.
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// `getattr(path)`.
    Stat(String),
    /// `create(path)`.
    Create(String),
    /// `read(path, offset, len)`.
    Read(String, u64, u32),
    /// `write(path, offset, len)` (payload synthesized at replay).
    Write(String, u64, u32),
    /// `readdir(path)`.
    Opendir(String),
    /// `unlink(path)`.
    Unlink(String),
    /// `rename(src, dst)`.
    Rename(String, String),
    /// `mkdir(path)`.
    Mkdir(String),
    /// `setattr(path, mode)`.
    Chmod(String, u32),
}

impl TraceOp {
    /// The call kind, for accounting.
    pub fn kind(&self) -> FsOpKind {
        match self {
            TraceOp::Stat(_) => FsOpKind::Stat,
            TraceOp::Create(_) => FsOpKind::OpenCreat,
            TraceOp::Read(..) => FsOpKind::Read,
            TraceOp::Write(..) => FsOpKind::Write,
            TraceOp::Opendir(_) => FsOpKind::Opendir,
            TraceOp::Unlink(_) => FsOpKind::Unlink,
            TraceOp::Rename(..) => FsOpKind::Rename,
            TraceOp::Mkdir(_) => FsOpKind::Mkdir,
            TraceOp::Chmod(..) => FsOpKind::Chmod,
        }
    }
}

/// A generated trace: per-client op streams plus the namespace to prepopulate.
pub struct Trace {
    /// Which production trace this models.
    pub kind: TraceKind,
    /// Directories to create before replay.
    pub dirs: Vec<String>,
    /// `(path, initial_size)` files to create before replay.
    pub files: Vec<(String, u64)>,
    /// One op stream per replay client.
    pub streams: Vec<Vec<TraceOp>>,
}

fn sample_cdf(cdf: &[(u64, f64)], rng: &mut impl rand::Rng) -> u64 {
    let p: f64 = rng.random();
    let mut lo = 1u64;
    for &(size, cum) in cdf {
        if p <= cum {
            // Log-uniform within the bucket [lo, size].
            let lo_l = (lo as f64).ln();
            let hi_l = (size.max(lo + 1) as f64).ln();
            let x: f64 = rng.random();
            return (lo_l + x * (hi_l - lo_l)).exp() as u64;
        }
        lo = size;
    }
    cdf.last().map_or(1, |&(s, _)| s)
}

impl Trace {
    /// Generates a trace with `clients` streams of `ops_per_client` calls
    /// over a namespace of `dirs_n` directories × `files_per_dir` files.
    ///
    /// `size_cap` truncates sampled file/IO sizes so laptop-scale replays
    /// stay fast (the paper's testbed wrote real multi-MB files).
    pub fn generate(
        kind: TraceKind,
        clients: usize,
        ops_per_client: usize,
        dirs_n: usize,
        files_per_dir: usize,
        size_cap: u64,
        seed: u64,
    ) -> Trace {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut dirs = Vec::new();
        let mut files = Vec::new();
        dirs.push("/tr".to_string());
        for d in 0..dirs_n {
            dirs.push(format!("/tr/d{d}"));
        }
        let file_cdf = kind.file_size_cdf();
        for d in 0..dirs_n {
            for f in 0..files_per_dir {
                let size = sample_cdf(file_cdf, &mut rng).min(size_cap);
                files.push((format!("/tr/d{d}/f{f}"), size));
            }
        }
        // Per-client private working sets for mutating ops; the read-only
        // population is shared (realistic hot-set sharing).
        let mix = kind.op_mix();
        let total_w: f64 = mix.iter().map(|(_, w)| w).sum();
        let io_cdf = kind.io_size_cdf();
        let mut streams = Vec::new();
        for c in 0..clients {
            dirs.push(format!("/tr/own{c}"));
            let mut stream = Vec::new();
            let mut next_create = 0usize;
            let mut live: Vec<String> = Vec::new();
            // Seed each client's private set so unlink/rename have targets.
            for i in 0..8 {
                let p = format!("/tr/own{c}/seed{i}");
                files.push((p.clone(), 1024));
                live.push(p);
            }
            for _ in 0..ops_per_client {
                let mut pick: f64 = rng.random::<f64>() * total_w;
                let mut kind_pick = mix[0].0;
                for &(k, w) in mix {
                    if pick < w {
                        kind_pick = k;
                        break;
                    }
                    pick -= w;
                }
                fn shared_file(
                    rng: &mut impl rand::Rng,
                    dirs_n: usize,
                    files_per_dir: usize,
                ) -> String {
                    format!(
                        "/tr/d{}/f{}",
                        rng.random_range(0..dirs_n),
                        rng.random_range(0..files_per_dir)
                    )
                }
                let op = match kind_pick {
                    FsOpKind::Stat | FsOpKind::Open => {
                        TraceOp::Stat(shared_file(&mut rng, dirs_n, files_per_dir))
                    }
                    FsOpKind::Read => {
                        let len = sample_cdf(io_cdf, &mut rng).min(size_cap).max(1) as u32;
                        TraceOp::Read(shared_file(&mut rng, dirs_n, files_per_dir), 0, len)
                    }
                    FsOpKind::Write => {
                        // Writes target the client's private files to avoid
                        // cross-client write races during replay.
                        let len = sample_cdf(io_cdf, &mut rng).min(size_cap).max(1) as u32;
                        match live.last() {
                            Some(p) => TraceOp::Write(p.clone(), 0, len),
                            None => TraceOp::Stat(shared_file(&mut rng, dirs_n, files_per_dir)),
                        }
                    }
                    FsOpKind::OpenCreat => {
                        next_create += 1;
                        let p = format!("/tr/own{c}/n{next_create}");
                        live.push(p.clone());
                        TraceOp::Create(p)
                    }
                    FsOpKind::Opendir => {
                        TraceOp::Opendir(format!("/tr/d{}", rng.random_range(0..dirs_n)))
                    }
                    FsOpKind::Unlink => match live.pop() {
                        Some(p) => TraceOp::Unlink(p),
                        None => {
                            next_create += 1;
                            let p = format!("/tr/own{c}/n{next_create}");
                            TraceOp::Create(p)
                        }
                    },
                    FsOpKind::Rename => match live.pop() {
                        Some(p) => {
                            next_create += 1;
                            let dst = format!("/tr/own{c}/m{next_create}");
                            live.push(dst.clone());
                            TraceOp::Rename(p, dst)
                        }
                        None => TraceOp::Stat(shared_file(&mut rng, dirs_n, files_per_dir)),
                    },
                    FsOpKind::Mkdir => {
                        next_create += 1;
                        TraceOp::Mkdir(format!("/tr/own{c}/dir{next_create}"))
                    }
                    FsOpKind::Chmod => TraceOp::Chmod(
                        match live.last() {
                            Some(p) => p.clone(),
                            None => shared_file(&mut rng, dirs_n, files_per_dir),
                        },
                        0o640,
                    ),
                };
                stream.push(op);
            }
            streams.push(stream);
        }
        Trace {
            kind,
            dirs,
            files,
            streams,
        }
    }

    /// Creates the namespace the streams expect (dirs, files with initial
    /// content).
    pub fn prepopulate(&self, fs: &dyn FileSystem) -> FsResult<()> {
        for d in &self.dirs {
            let _ = fs.mkdir(d);
        }
        let payload = vec![0xA5u8; 256 << 10];
        for (p, size) in &self.files {
            fs.create(p)?;
            if *size > 0 {
                let n = (*size).min(payload.len() as u64) as usize;
                fs.write(p, 0, &payload[..n])?;
            }
        }
        Ok(())
    }

    /// Total calls across all streams.
    pub fn total_ops(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

/// Result of a trace replay.
pub struct TraceReplay {
    /// File-system-call level result.
    pub fsops: BenchResult,
    /// Estimated metadata operations performed (per Table 3 multipliers).
    pub metadata_ops: u64,
}

impl TraceReplay {
    /// Metadata operation throughput.
    pub fn metadata_throughput(&self) -> f64 {
        if self.fsops.wall.is_zero() {
            0.0
        } else {
            self.metadata_ops as f64 / self.fsops.wall.as_secs_f64()
        }
    }
}

/// Replays a trace: one thread per stream against its own handle.
pub fn replay<FS, F>(trace: &Trace, make_fs: F) -> TraceReplay
where
    FS: FileSystem + 'static,
    F: Fn(usize) -> FS + Sync,
{
    let start = Instant::now();
    let results: Vec<(u64, u64, u64, Histogram)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, stream) in trace.streams.iter().enumerate() {
            let fs = make_fs(c);
            handles.push(scope.spawn(move || {
                let payload = vec![0x5Au8; 256 << 10];
                let mut hist = Histogram::new();
                let mut ops = 0u64;
                let mut errors = 0u64;
                let mut meta = 0u64;
                for op in stream {
                    let t0 = Instant::now();
                    let res: FsResult<()> = match op {
                        TraceOp::Stat(p) => fs.getattr(p).map(|_| ()),
                        TraceOp::Create(p) => fs.create(p).map(|_| ()),
                        TraceOp::Read(p, off, len) => fs.read(p, *off, *len as usize).map(|_| ()),
                        TraceOp::Write(p, off, len) => fs.write(p, *off, &payload[..*len as usize]),
                        TraceOp::Opendir(p) => fs.readdir(p).map(|_| ()),
                        TraceOp::Unlink(p) => fs.unlink(p),
                        TraceOp::Rename(a, b) => fs.rename(a, b),
                        TraceOp::Mkdir(p) => fs.mkdir(p).map(|_| ()),
                        TraceOp::Chmod(p, mode) => fs.setattr(
                            p,
                            SetAttrPatch {
                                mode: Some(*mode),
                                ..Default::default()
                            },
                        ),
                    };
                    match res {
                        Ok(()) => {
                            hist.record(t0.elapsed().as_nanos() as u64);
                            ops += 1;
                            meta += op.kind().metadata_ops();
                        }
                        Err(_) => errors += 1,
                    }
                }
                (ops, errors, meta, hist)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("replay thread"))
            .collect()
    });
    let wall = start.elapsed();
    let mut latency = Histogram::new();
    let mut ops = 0;
    let mut errors = 0;
    let mut metadata_ops = 0;
    for (o, e, m, h) in &results {
        ops += o;
        errors += e;
        metadata_ops += m;
        latency.merge(h);
    }
    TraceReplay {
        fsops: BenchResult {
            ops,
            errors,
            wall,
            latency,
        },
        metadata_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn op_mixes_sum_to_100() {
        for kind in [TraceKind::Tr0, TraceKind::Tr1, TraceKind::Tr2] {
            let total: f64 = kind.op_mix().iter().map(|(_, w)| w).sum();
            assert!(
                (total - 100.0).abs() < 0.5,
                "{} mix sums to {total}",
                kind.name()
            );
        }
    }

    #[test]
    fn generated_mix_tracks_table3() {
        let t = Trace::generate(TraceKind::Tr1, 2, 4000, 4, 8, 64 << 10, 7);
        let mut counts: std::collections::HashMap<FsOpKind, usize> =
            std::collections::HashMap::new();
        for s in &t.streams {
            for op in s {
                *counts.entry(op.kind()).or_default() += 1;
            }
        }
        let total = t.total_ops() as f64;
        let stat_frac = *counts.get(&FsOpKind::Stat).unwrap_or(&0) as f64 / total;
        // Stat+Open are both emitted as Stat; Table 3 says 47.2 + 3.1 ≈ 50%.
        assert!(
            (0.40..0.65).contains(&stat_frac),
            "stat fraction {stat_frac}"
        );
        let write_frac = *counts.get(&FsOpKind::Write).unwrap_or(&0) as f64 / total;
        assert!(
            (0.04..0.13).contains(&write_frac),
            "write fraction {write_frac}"
        );
    }

    #[test]
    fn size_sampling_respects_cdf_shape() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let cdf = TraceKind::Tr1.file_size_cdf();
        let mut small = 0;
        let n = 10_000;
        for _ in 0..n {
            if sample_cdf(cdf, &mut rng) <= 32 << 10 {
                small += 1;
            }
        }
        let frac = small as f64 / n as f64;
        assert!(
            (0.87..0.96).contains(&frac),
            "expected ~91.34% of files ≤32KB, got {frac}"
        );
    }

    #[test]
    fn replay_against_cfs_completes() {
        let cluster =
            Arc::new(cfs_core::CfsCluster::start(cfs_core::CfsConfig::test_small()).unwrap());
        let t = Trace::generate(TraceKind::Tr2, 2, 60, 2, 4, 8 << 10, 9);
        t.prepopulate(&cluster.client()).unwrap();
        let c2 = Arc::clone(&cluster);
        let r = replay(&t, move |_| c2.client());
        assert_eq!(
            r.fsops.errors, 0,
            "replay must be race-free by construction"
        );
        assert_eq!(r.fsops.ops as usize, t.total_ops());
        assert!(r.metadata_ops >= r.fsops.ops);
    }
}

//! Latency histograms and summaries.

/// A log-bucketed latency histogram (HDR-style): ~1.4% relative error across
/// nanoseconds to minutes, constant memory, mergeable.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// `buckets[b * SUB + s]` counts samples in sub-bucket `s` of power `b`.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
    min: u64,
}

/// Sub-buckets per power of two.
const SUB: usize = 64;
/// Powers of two covered (2^0 .. 2^47 ns ≈ 39 hours).
const POWERS: usize = 48;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; SUB * POWERS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    fn index(value: u64) -> usize {
        let v = value.max(1);
        let power = 63 - v.leading_zeros() as usize;
        let power = power.min(POWERS - 1);
        // The sub-bucket is the next 6 bits below the leading one.
        let sub = if power >= 6 {
            ((v >> (power - 6)) & 0x3F) as usize
        } else {
            (v & 0x3F) as usize % SUB
        };
        power * SUB + sub
    }

    /// Records one sample (nanoseconds).
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0,1]` (upper bucket edge).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let power = i / SUB;
                let sub = (i % SUB) as u64;
                let base = 1u64 << power;
                let edge = if power >= 6 {
                    base + ((sub + 1) << (power - 6))
                } else {
                    base + sub + 1
                };
                return edge.min(self.max.max(1));
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }

    /// Condensed summary.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean_ns: self.mean() as u64,
            p50_ns: self.quantile(0.50),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
            max_ns: if self.count == 0 { 0 } else { self.max },
        }
    }
}

/// Condensed latency summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Samples.
    pub count: u64,
    /// Mean latency in nanoseconds.
    pub mean_ns: u64,
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Maximum.
    pub max_ns: u64,
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Formats an ops/sec figure compactly.
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}K", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut h = Histogram::new();
        h.record(1000);
        assert_eq!(h.count(), 1);
        let q = h.quantile(0.5);
        assert!((985..=1100).contains(&q), "median {q} should be ~1000");
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 10);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999);
        // Relative accuracy ~ a few percent.
        assert!((450_000..560_000).contains(&p50), "p50={p50}");
        assert!((940_000..1_080_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..1000u64 {
            let v = (i * 7919) % 100_000 + 1;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.9), all.quantile(0.9));
        assert_eq!(a.summary(), all.summary());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ops(3_440_000.0), "3.44M");
        assert_eq!(fmt_ops(17_960.0), "18.0K");
    }

    proptest! {
        #[test]
        fn prop_quantile_relative_error_bounded(values in proptest::collection::vec(1u64..10_000_000_000, 100..500)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for q in [0.5, 0.9, 0.99] {
                let exact = sorted[((q * sorted.len() as f64).ceil() as usize - 1).min(sorted.len() - 1)];
                let approx = h.quantile(q);
                let err = (approx as f64 - exact as f64).abs() / exact as f64;
                prop_assert!(err < 0.05, "q={q} exact={exact} approx={approx} err={err}");
            }
        }

        #[test]
        fn prop_count_and_max_exact(values in proptest::collection::vec(1u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.summary().max_ns, *values.iter().max().unwrap());
        }
    }
}

//! Multi-tenant volumes for the CFS reproduction.
//!
//! ChubaoFS's headline scenario is millions of filesystem *volumes* sharing
//! one metadata substrate. This crate adds the tenant layer on top of the
//! paper's pruned-critical-section machinery:
//!
//! * [`VolumeRegistry`] — create/delete/list volumes. Each volume is an
//!   isolated namespace rooted at its own root inode; the tenant id rides in
//!   the top 16 bits of every inode id ([`cfs_types::VOLUME_SHIFT`]), so the
//!   sortable TafDB key schema carries it as a byte prefix and every
//!   shard/split/migration path is tenant-aware for free.
//! * Per-tenant **quotas** (inode count + logical bytes) stored in an
//!   ordinary replicated record at the volume's band start and enforced by
//!   [`cfs_types::Pred::QuotaHasRoom`] inside the delta-apply funnel —
//!   deterministic across replicas, so the divergence oracle holds.
//! * [`QosLimiter`] — per-tenant token-bucket fair-share admission used by
//!   `CfsClient`, with per-tenant op-rate/throttle metrics through cfs-obs.

pub mod qos;
pub mod registry;

pub use qos::{QosConfig, QosLimiter};
pub use registry::{VolumeInfo, VolumeRegistry};

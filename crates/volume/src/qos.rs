//! QoS fair-share admission: per-tenant token buckets.
//!
//! Every volume gets its own bucket refilled at a configured rate, so a
//! noisy tenant saturating the metadata service drains only its own tokens
//! and the victim tenant's latency stays flat. Admission happens at the
//! client (`CfsClient`) *before* any RPC is issued — throttled work never
//! reaches the shards, which is what protects the shared Raft groups.
//!
//! Per-tenant counters are recorded through the cfs-obs registry of the
//! node calling [`QosLimiter::admit`]:
//!
//! * `tenant.vol<N>.ops` — admitted operations,
//! * `tenant.vol<N>.throttle_waits` — admissions that had to wait,
//! * `tenant.vol<N>.rejects` — admissions that gave up (`FsError::Busy`),
//! * `tenant.vol<N>.wait_us` — histogram of admission wait time.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cfs_types::{FsError, FsResult, VolumeId};
use parking_lot::Mutex;

/// Per-volume admission parameters.
#[derive(Clone, Copy, Debug)]
pub struct QosConfig {
    /// Sustained operations per second granted to the tenant.
    pub ops_per_sec: f64,
    /// Bucket capacity: how many operations may burst at once.
    pub burst: f64,
    /// How long an admission may wait for a token before failing `Busy`.
    pub max_wait: Duration,
}

impl Default for QosConfig {
    fn default() -> QosConfig {
        QosConfig {
            ops_per_sec: 2_000.0,
            burst: 100.0,
            max_wait: Duration::from_secs(2),
        }
    }
}

struct Bucket {
    tokens: f64,
    last_refill: Instant,
    cfg: QosConfig,
}

impl Bucket {
    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.tokens = (self.tokens + dt * self.cfg.ops_per_sec).min(self.cfg.burst);
        self.last_refill = now;
    }
}

/// The fair-share limiter shared by every client of a cluster.
pub struct QosLimiter {
    default_cfg: QosConfig,
    buckets: Mutex<HashMap<u16, Bucket>>,
}

impl QosLimiter {
    /// Creates a limiter granting each volume `default_cfg`'s share.
    pub fn new(default_cfg: QosConfig) -> QosLimiter {
        QosLimiter {
            default_cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides one volume's share.
    pub fn set_rate(&self, vol: VolumeId, cfg: QosConfig) {
        let mut buckets = self.buckets.lock();
        buckets.insert(
            vol.0,
            Bucket {
                tokens: cfg.burst,
                last_refill: Instant::now(),
                cfg,
            },
        );
    }

    /// Admits one operation for `vol`, blocking until a token is available
    /// or the volume's `max_wait` elapses (then `FsError::Busy`).
    pub fn admit(&self, vol: VolumeId) -> FsResult<()> {
        let start = Instant::now();
        let metrics = cfs_obs::metrics::local();
        let prefix = format!("tenant.vol{}", vol.0);
        let mut waited = false;
        loop {
            let now = Instant::now();
            let sleep_for = {
                let mut buckets = self.buckets.lock();
                let b = buckets.entry(vol.0).or_insert_with(|| Bucket {
                    tokens: self.default_cfg.burst,
                    last_refill: now,
                    cfg: self.default_cfg,
                });
                b.refill(now);
                if b.tokens >= 1.0 {
                    b.tokens -= 1.0;
                    None
                } else {
                    // Time until one whole token has dripped in.
                    let deficit = 1.0 - b.tokens;
                    let max_wait = b.cfg.max_wait;
                    let need = Duration::from_secs_f64(deficit / b.cfg.ops_per_sec.max(1e-9));
                    if now.duration_since(start) + need > max_wait {
                        metrics.counter(&format!("{prefix}.rejects")).inc();
                        return Err(FsError::Busy);
                    }
                    Some(need)
                }
            };
            match sleep_for {
                None => {
                    metrics.counter(&format!("{prefix}.ops")).inc();
                    metrics
                        .histogram(&format!("{prefix}.wait_us"))
                        .observe(start.elapsed().as_micros() as u64);
                    return Ok(());
                }
                Some(need) => {
                    if !waited {
                        waited = true;
                        metrics.counter(&format!("{prefix}.throttle_waits")).inc();
                    }
                    std::thread::sleep(need.max(Duration::from_micros(100)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, burst: f64, max_wait_ms: u64) -> QosConfig {
        QosConfig {
            ops_per_sec: rate,
            burst,
            max_wait: Duration::from_millis(max_wait_ms),
        }
    }

    #[test]
    fn burst_admits_instantly_then_rate_limits() {
        let q = QosLimiter::new(cfg(100.0, 5.0, 1_000));
        let v = VolumeId(9);
        let t0 = Instant::now();
        for _ in 0..5 {
            q.admit(v).unwrap();
        }
        assert!(t0.elapsed() < Duration::from_millis(50), "burst is free");
        // The 6th token must drip in at ~10ms.
        q.admit(v).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5), "rate applies");
    }

    #[test]
    fn exhausted_bucket_rejects_with_busy() {
        let q = QosLimiter::new(cfg(0.001, 1.0, 20));
        let v = VolumeId(10);
        q.admit(v).unwrap();
        assert_eq!(q.admit(v).unwrap_err(), FsError::Busy);
    }

    #[test]
    fn volumes_do_not_share_buckets() {
        let q = QosLimiter::new(cfg(0.001, 1.0, 20));
        q.admit(VolumeId(11)).unwrap();
        // Volume 11 is drained; volume 12 still has its own burst.
        q.admit(VolumeId(12)).unwrap();
        assert_eq!(q.admit(VolumeId(11)).unwrap_err(), FsError::Busy);
    }

    #[test]
    fn per_volume_override_takes_effect() {
        let q = QosLimiter::new(cfg(0.001, 1.0, 20));
        let v = VolumeId(13);
        q.set_rate(v, cfg(1_000.0, 50.0, 1_000));
        for _ in 0..50 {
            q.admit(v).unwrap();
        }
    }

    #[test]
    fn admission_records_tenant_metrics() {
        let _scope = cfs_obs::trace::node_scope(880_001);
        let q = QosLimiter::new(cfg(1_000.0, 10.0, 1_000));
        let v = VolumeId(14);
        q.admit(v).unwrap();
        q.admit(v).unwrap();
        let reg = cfs_obs::metrics::node(880_001);
        assert_eq!(reg.counter("tenant.vol14.ops").get(), 2);
    }
}

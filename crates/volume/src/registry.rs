//! The volume registry: named tenants mapped to inode-id bands.
//!
//! Registry state lives in TafDB itself, under the reserved kid 0 (the
//! "null inode", never allocated to a file):
//!
//! * `Key::attr(0)` — the registry record; its `children` field is the next
//!   unallocated volume id, advanced with a compare-and-swap
//!   (`Pred::ChildrenEq`) so concurrent creators never mint the same id.
//! * `Key::entry(0, <name>)` — one name entry per volume, whose `id` field
//!   is the volume's root inode. Kid 0 sorts first in the key space, so all
//!   registry records live on shard 0 and every registry mutation is a
//!   single-shard primitive.
//!
//! Creating volume `v` also writes two records inside `v`'s own band:
//! the quota record at the band start (local id 0) and the root directory's
//! `/_ATTR` record at local id 1.

use cfs_tafdb::primitive::{Primitive, UpdateSpec};
use cfs_tafdb::TafDbClient;
use cfs_types::record::{FieldAssign, NumField, Pred};
use cfs_types::{Cond, FileType, FsError, FsResult, InodeId, Key, Record, Timestamp, VolumeId};

/// The reserved kid hosting the registry (the null inode id).
pub const REGISTRY_KID: InodeId = InodeId(0);

/// A registered volume.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VolumeInfo {
    /// Tenant-visible name.
    pub name: String,
    /// The volume id (top 16 bits of every inode in the volume).
    pub id: VolumeId,
    /// The volume's root directory inode.
    pub root: InodeId,
}

/// Client handle over the replicated registry.
pub struct VolumeRegistry {
    taf: TafDbClient,
}

impl VolumeRegistry {
    /// Wraps a TafDB client. Call [`VolumeRegistry::ensure_init`] once per
    /// cluster before creating volumes (cluster boot does this).
    pub fn new(taf: TafDbClient) -> VolumeRegistry {
        VolumeRegistry { taf }
    }

    /// Seeds the registry record if absent (idempotent). Volume ids start
    /// at 1; id 0 is the default volume, which needs no registration.
    pub fn ensure_init(&self) -> FsResult<()> {
        let rec = Record {
            ftype: Some(FileType::Dir),
            children: Some(1),
            ..Record::default()
        };
        let prim = Primitive {
            inserts: vec![(Key::attr(REGISTRY_KID), rec)],
            ..Primitive::default()
        };
        match self.taf.execute(prim) {
            Ok(_) | Err(FsError::AlreadyExists) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Creates a volume named `name` with the given quota limits (`None` =
    /// unlimited) and returns its descriptor. Fails with `AlreadyExists`
    /// when the name is taken.
    pub fn create(
        &self,
        name: &str,
        inode_limit: Option<i64>,
        byte_limit: Option<i64>,
    ) -> FsResult<VolumeInfo> {
        if name.is_empty() || name.contains('/') {
            return Err(FsError::Invalid("bad volume name".into()));
        }
        loop {
            let reg = self
                .taf
                .get(&Key::attr(REGISTRY_KID))?
                .ok_or_else(|| FsError::Corrupted("volume registry not initialized".into()))?;
            let next = reg.children.unwrap_or(1);
            if next <= 0 || next > i64::from(u16::MAX) {
                return Err(FsError::NoSpace);
            }
            let vol = VolumeId(next as u16);
            let root = vol.root_inode();
            let mut entry = Record::id_record(root, FileType::Dir);
            entry.inode_limit = inode_limit;
            entry.byte_limit = byte_limit;
            // One single-shard primitive: link the name AND advance the id
            // counter under a CAS. Either both happen or neither; a lost CAS
            // means another creator won the id and we retry with the next.
            let prim = Primitive::insert_with_update(
                Key::entry(REGISTRY_KID, name),
                entry,
                UpdateSpec::new(
                    Cond::require(Key::attr(REGISTRY_KID), vec![Pred::ChildrenEq(next)]),
                    vec![FieldAssign::Delta {
                        field: NumField::Children,
                        delta: 1,
                    }],
                ),
            );
            match self.taf.execute(prim) {
                Ok(_) => {
                    // The id is ours alone now: materialize the volume's
                    // band — quota record at local 0, root /_ATTR at local 1.
                    self.taf.put(
                        Key::attr(vol.quota_kid()),
                        Record::quota_record(inode_limit, byte_limit),
                    )?;
                    let mut root_rec = Record::dir_attr_record(0, Timestamp(0));
                    root_rec.id = Some(root); // parent pointer = itself
                    self.taf.put(Key::attr(root), root_rec)?;
                    return Ok(VolumeInfo {
                        name: name.to_string(),
                        id: vol,
                        root,
                    });
                }
                // CAS lost: another create advanced the counter first.
                Err(FsError::NotEmpty) | Err(FsError::Conflict) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Looks a volume up by name.
    pub fn lookup(&self, name: &str) -> FsResult<VolumeInfo> {
        let rec = self
            .taf
            .get(&Key::entry(REGISTRY_KID, name))?
            .ok_or(FsError::NotFound)?;
        let root = rec
            .id
            .ok_or_else(|| FsError::Corrupted("volume entry lacks root".into()))?;
        Ok(VolumeInfo {
            name: name.to_string(),
            id: root.volume(),
            root,
        })
    }

    /// Lists every registered volume in name order.
    pub fn list(&self) -> FsResult<Vec<VolumeInfo>> {
        let mut out = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let page = self.taf.scan(REGISTRY_KID, after.clone(), 256)?;
            let done = page.len() < 256;
            for e in &page {
                let root = e
                    .record
                    .id
                    .ok_or_else(|| FsError::Corrupted("volume entry lacks root".into()))?;
                out.push(VolumeInfo {
                    name: e.name.clone(),
                    id: root.volume(),
                    root,
                });
            }
            if done {
                return Ok(out);
            }
            after = page.last().map(|e| e.name.clone());
        }
    }

    /// Deletes an *empty* volume: fails with `NotEmpty` while its root
    /// directory still has children. Volume ids are never reused.
    pub fn delete(&self, name: &str) -> FsResult<()> {
        let info = self.lookup(name)?;
        // Emptiness check on the root's home shard (racy with concurrent
        // creates inside the volume, like POSIX rmdir is with creates).
        let check = Primitive {
            checks: vec![Cond::require(
                Key::attr(info.root),
                vec![Pred::ChildrenEq(0)],
            )],
            ..Primitive::default()
        };
        self.taf.execute(check)?;
        let unlink = Primitive {
            deletes: vec![Cond::require(
                Key::entry(REGISTRY_KID, name),
                vec![Pred::IdEq(info.root)],
            )],
            ..Primitive::default()
        };
        self.taf.execute(unlink)?;
        self.taf.delete(Key::attr(info.root))?;
        self.taf.delete(Key::attr(info.id.quota_kid()))?;
        Ok(())
    }

    /// Current quota usage of a volume: `(inodes_used, bytes_used)`.
    pub fn usage(&self, vol: VolumeId) -> FsResult<(i64, i64)> {
        let rec = self
            .taf
            .get(&Key::attr(vol.quota_kid()))?
            .ok_or(FsError::NotFound)?;
        Ok((rec.links.unwrap_or(0), rec.size.unwrap_or(0)))
    }

    /// A volume's configured limits: `(inode_limit, byte_limit)`.
    pub fn limits(&self, vol: VolumeId) -> FsResult<(Option<i64>, Option<i64>)> {
        let rec = self
            .taf
            .get(&Key::attr(vol.quota_kid()))?
            .ok_or(FsError::NotFound)?;
        Ok((rec.inode_limit, rec.byte_limit))
    }
}

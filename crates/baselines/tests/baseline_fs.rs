//! Behavioral battery run against every baseline/ablation variant: all
//! systems must agree on POSIX semantics so cross-system benchmarks compare
//! performance, not correctness differences.

use std::sync::Arc;

use cfs_baselines::{BaselineCluster, Variant};
use cfs_core::{CfsConfig, FileSystem};
use cfs_filestore::SetAttrPatch;
use cfs_types::{FileType, FsError};

fn boot(variant: Variant) -> BaselineCluster {
    BaselineCluster::start(variant, CfsConfig::test_small(), 2).expect("boot")
}

fn battery(fs: &dyn FileSystem) {
    // Create / lookup / getattr.
    fs.mkdir("/w").unwrap();
    let ino = fs.create("/w/f1").unwrap();
    assert_eq!(fs.lookup("/w/f1").unwrap(), ino);
    let attr = fs.getattr("/w/f1").unwrap();
    assert_eq!(attr.ftype, FileType::File);
    assert_eq!(fs.getattr("/w").unwrap().children, 1);
    // Duplicate create fails.
    assert_eq!(fs.create("/w/f1").unwrap_err(), FsError::AlreadyExists);
    // setattr round trip.
    fs.setattr(
        "/w/f1",
        SetAttrPatch {
            mode: Some(0o640),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fs.getattr("/w/f1").unwrap().mode, 0o640);
    // readdir.
    fs.create("/w/f2").unwrap();
    fs.mkdir("/w/d1").unwrap();
    let mut names: Vec<String> = fs
        .readdir("/w")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    names.sort();
    assert_eq!(names, vec!["d1", "f1", "f2"]);
    // rmdir semantics.
    assert_eq!(fs.rmdir("/w").unwrap_err(), FsError::NotEmpty);
    assert_eq!(fs.rmdir("/w/f1").unwrap_err(), FsError::NotDir);
    assert_eq!(fs.unlink("/w/d1").unwrap_err(), FsError::IsDir);
    fs.rmdir("/w/d1").unwrap();
    // unlink.
    fs.unlink("/w/f2").unwrap();
    assert_eq!(fs.lookup("/w/f2").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.getattr("/w").unwrap().children, 1);
    // rename within a directory.
    fs.rename("/w/f1", "/w/renamed").unwrap();
    assert_eq!(fs.lookup("/w/renamed").unwrap(), ino);
    assert_eq!(fs.lookup("/w/f1").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.getattr("/w/renamed").unwrap().mode, 0o640);
    // rename across directories.
    fs.mkdir("/other").unwrap();
    fs.rename("/w/renamed", "/other/moved").unwrap();
    assert_eq!(fs.getattr("/w").unwrap().children, 0);
    assert_eq!(fs.getattr("/other").unwrap().children, 1);
    // rename with destination replacement.
    fs.create("/other/target").unwrap();
    fs.rename("/other/moved", "/other/target").unwrap();
    assert_eq!(fs.lookup("/other/target").unwrap(), ino);
    assert_eq!(fs.getattr("/other").unwrap().children, 1);
    // directory move + loop rejection.
    fs.mkdir("/t1").unwrap();
    fs.mkdir("/t1/t2").unwrap();
    assert_eq!(fs.rename("/t1", "/t1/t2/inner").unwrap_err(), FsError::Loop);
    fs.mkdir("/t3").unwrap();
    fs.rename("/t1/t2", "/t3/t2").unwrap();
    assert!(fs.lookup("/t3/t2").is_ok());
    // data path.
    fs.create("/other/data").unwrap();
    let payload = vec![7u8; 100_000];
    fs.write("/other/data", 0, &payload).unwrap();
    assert_eq!(
        fs.getattr("/other/data").unwrap().size,
        payload.len() as u64
    );
    assert_eq!(
        fs.read("/other/data", 50_000, 1000).unwrap(),
        vec![7u8; 1000]
    );
    // symlink.
    fs.symlink("/other/data", "/other/link").unwrap();
    assert_eq!(fs.readlink("/other/link").unwrap(), "/other/data");
    fs.unlink("/other/link").unwrap();
}

#[test]
fn hopsfs_like_semantics() {
    let c = boot(Variant::HopsFs);
    battery(&c.client());
}

#[test]
fn infinifs_like_semantics() {
    let c = boot(Variant::InfiniFs);
    battery(&c.client());
}

#[test]
fn cfs_base_semantics() {
    let c = boot(Variant::CfsBase);
    battery(&c.client());
}

#[test]
fn new_org_semantics() {
    let c = boot(Variant::NewOrg);
    battery(&c.client());
}

#[test]
fn primitives_semantics() {
    let c = boot(Variant::Primitives);
    battery(&c.client());
}

#[test]
fn no_proxy_semantics() {
    let c = boot(Variant::NoProxy);
    battery(&c.client());
}

#[test]
fn hopsfs_concurrent_creates_serialize_but_stay_correct() {
    let c = Arc::new(boot(Variant::HopsFs));
    let fs = c.client();
    fs.mkdir("/shared").unwrap();
    let threads = 4;
    let per = 10;
    let mut handles = Vec::new();
    for t in 0..threads {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let fs = c.client();
            for i in 0..per {
                fs.create(&format!("/shared/f-{t}-{i}")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let attr = fs.getattr("/shared").unwrap();
    assert_eq!(attr.children as usize, threads * per);
    assert_eq!(fs.readdir("/shared").unwrap().len(), threads * per);
    // The lock-based engine must have recorded real lock activity.
    let m = c.shard_metrics();
    assert!(m.lock_acquisitions > 0);
}

#[test]
fn infinifs_concurrent_creates_stay_correct() {
    let c = Arc::new(boot(Variant::InfiniFs));
    let fs = c.client();
    fs.mkdir("/shared").unwrap();
    let threads = 4;
    let per = 10;
    let mut handles = Vec::new();
    for t in 0..threads {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let fs = c.client();
            for i in 0..per {
                fs.create(&format!("/shared/f-{t}-{i}")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        fs.getattr("/shared").unwrap().children as usize,
        threads * per
    );
}

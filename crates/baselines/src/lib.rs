//! Baseline metadata services: HopsFS-like and InfiniFS-like.
//!
//! Both baselines run on the *same* substrate as CFS (the TafDB shard
//! backends with their interactive lock-based transaction engine, the
//! FileStore for data blocks, the simulated network) and differ exactly along
//! the axes the paper varies:
//!
//! | Axis | HopsFS-like | InfiniFS-like | CFS |
//! |---|---|---|---|
//! | Row schema | inline attributes in the inode row (NDB `inodes` table) | decoupled access/content records, file attrs grouped with parent | tiered: namespace in TafDB, file attrs in FileStore |
//! | Partitioning | by parent-id hash (cross-shard create/mkdir) | parent-children grouping (single-shard create, 2PC mkdir) | range on `kID` + hash on FileStore |
//! | Execution | row locks held across client↔shard round trips + 2PC | row locks, single-shard txns where grouping allows | single-shard atomic primitives, no locks |
//! | Front end | metadata proxy layer (namenode) | metadata proxy layer (MDS) | client-side metadata resolving |
//! | Rename | subtree locks + 2PC | rename coordinator, no fast path | fast-path primitive + Renamer |
//!
//! The same machinery also provides the **CFS-base / +new-org / +primitives /
//! +no-proxy** ablation variants of the paper's Figure 13 via
//! [`engine::EngineConfig`].

pub mod engine;
pub mod hopsfs;
pub mod infinifs;
pub mod proxy;
pub mod variants;

pub use engine::{AttrSchema, EngineConfig, Placement};
pub use hopsfs::HopsFsCluster;
pub use infinifs::InfiniFsCluster;
pub use variants::{BaselineCluster, Variant};

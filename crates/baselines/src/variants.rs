//! Generic baseline cluster assembly, parameterized over the paper's axes.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cfs_core::CfsConfig;
use cfs_filestore::{FileStoreClient, FileStoreGroup, FileStoreLayout};
use cfs_rpc::Network;
use cfs_tafdb::router::{PartitionMap, ShardInfo};
use cfs_tafdb::{TafBackendGroup, TafDbClient, TimeService, TsClient};
use cfs_types::{FsResult, NodeId, ShardId};

use crate::engine::{AttrSchema, EngineConfig, EntryCache, InodeLocks, MetaEngine, Placement};
use crate::proxy::{BaselineFs, ProxyService};

/// The systems and ablation variants of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// HopsFS-like: hash partitioning, inline attrs, locking, proxy,
    /// subtree-locked renames.
    HopsFs,
    /// InfiniFS-like: parent-grouped partitioning, file attrs grouped with
    /// parent, locking, proxy.
    InfiniFs,
    /// Figure 13 "CFS-base": all metadata range-partitioned in TafDB,
    /// locking engine, proxy layer.
    CfsBase,
    /// Figure 13 "+new-org": CFS-base with file attributes offloaded to
    /// FileStore.
    NewOrg,
    /// Figure 13 "+primitives": +new-org with single-shard atomic
    /// primitives.
    Primitives,
    /// Figure 13 "+no-proxy": the full CFS configuration expressed through
    /// the same machinery (client-side resolving).
    NoProxy,
}

impl Variant {
    /// The engine configuration for this variant.
    pub fn engine_config(self) -> EngineConfig {
        match self {
            Variant::HopsFs => EngineConfig {
                name: "HopsFS".into(),
                placement: Placement::KidHash,
                schema: AttrSchema::Inline,
                use_primitives: false,
            },
            Variant::InfiniFs => EngineConfig {
                name: "InfiniFS".into(),
                placement: Placement::KidRange,
                schema: AttrSchema::SplitWithParent,
                use_primitives: false,
            },
            Variant::CfsBase => EngineConfig {
                name: "CFS-base".into(),
                placement: Placement::KidRange,
                schema: AttrSchema::SplitByIno,
                use_primitives: false,
            },
            Variant::NewOrg => EngineConfig {
                name: "+new-org".into(),
                placement: Placement::KidRange,
                schema: AttrSchema::SplitFileStore,
                use_primitives: false,
            },
            Variant::Primitives | Variant::NoProxy => EngineConfig {
                name: if self == Variant::Primitives {
                    "+primitives"
                } else {
                    "+no-proxy"
                }
                .into(),
                placement: Placement::KidRange,
                schema: AttrSchema::SplitFileStore,
                use_primitives: true,
            },
        }
    }

    /// Whether clients go through the proxy layer.
    pub fn uses_proxy(self) -> bool {
        !matches!(self, Variant::NoProxy)
    }
}

/// Node-id layout (disjoint from the CFS cluster's).
const TS_NODE: NodeId = NodeId(50);
const TAF_BASE: u32 = 200_000;
const FS_BASE: u32 = 300_000;
const PROXY_BASE: u32 = 400_000;
const CLIENT_BASE: u32 = 2_000_000;

/// A deployed baseline system.
pub struct BaselineCluster {
    variant: Variant,
    config: CfsConfig,
    net: Arc<Network>,
    pmap: Arc<PartitionMap>,
    fs_layout: Arc<FileStoreLayout>,
    taf_groups: Vec<TafBackendGroup>,
    fs_groups: Vec<FileStoreGroup>,
    _time_service: Arc<TimeService>,
    proxies: Vec<NodeId>,
    proxy_engines: Vec<Arc<MetaEngine>>,
    coord: Arc<InodeLocks>,
    cache: Arc<EntryCache>,
    next_client: AtomicU32,
    next_engine: AtomicU32,
}

impl BaselineCluster {
    /// Boots a baseline deployment. `proxies` controls how many proxy nodes
    /// serve clients (ignored for [`Variant::NoProxy`]).
    pub fn start(variant: Variant, config: CfsConfig, proxies: usize) -> FsResult<BaselineCluster> {
        let net = Network::new(config.net.clone());
        let shard_infos: Vec<ShardInfo> = (0..config.taf_shards)
            .map(|s| ShardInfo {
                id: ShardId(s as u32),
                replicas: (0..config.replication)
                    .map(|r| NodeId(TAF_BASE + (s * config.replication + r) as u32))
                    .collect(),
            })
            .collect();
        let pmap = Arc::new(PartitionMap::new(shard_infos.clone()));
        let time_service = TimeService::new(Arc::clone(&pmap));
        time_service.register(&net, TS_NODE);
        let mut taf_groups = Vec::new();
        for info in &shard_infos {
            taf_groups.push(TafBackendGroup::spawn(
                &net,
                info.id,
                &info.replicas,
                config.raft.clone(),
                config.kv.clone(),
            ));
        }
        let mut fs_groups = Vec::new();
        let mut fs_nodes = Vec::new();
        for n in 0..config.filestore_nodes {
            let ids: Vec<NodeId> = (0..config.replication)
                .map(|r| NodeId(FS_BASE + (n * config.replication + r) as u32))
                .collect();
            fs_nodes.push(ids.clone());
            fs_groups.push(FileStoreGroup::spawn(
                &net,
                &ids,
                config.raft.clone(),
                config.kv.clone(),
            ));
        }
        let fs_layout = Arc::new(FileStoreLayout::new(fs_nodes));
        for g in &taf_groups {
            g.wait_ready(Duration::from_secs(30))?;
        }
        for g in &fs_groups {
            g.wait_ready(Duration::from_secs(30))?;
        }

        let coord = Arc::new(InodeLocks::default());
        let cache = Arc::new(EntryCache::default());
        let mut cluster = BaselineCluster {
            variant,
            config,
            net,
            pmap,
            fs_layout,
            taf_groups,
            fs_groups,
            _time_service: time_service,
            proxies: Vec::new(),
            proxy_engines: Vec::new(),
            coord,
            cache,
            next_client: AtomicU32::new(CLIENT_BASE),
            next_engine: AtomicU32::new(1),
        };

        // Bootstrap the root through a throwaway engine.
        cluster.make_engine(NodeId(99)).bootstrap_root()?;

        // Proxy layer.
        if variant.uses_proxy() {
            for i in 0..proxies.max(1) {
                let node = NodeId(PROXY_BASE + i as u32);
                let engine = Arc::new(cluster.make_engine(node));
                let svc = ProxyService::new(Arc::clone(&engine));
                let mux = cfs_rpc::MuxService::new();
                mux.mount(cfs_rpc::mux::CH_APP, svc as Arc<dyn cfs_rpc::Service>);
                cluster.net.register(node, mux);
                cluster.proxies.push(node);
                cluster.proxy_engines.push(engine);
            }
        }
        Ok(cluster)
    }

    fn make_engine(&self, me: NodeId) -> MetaEngine {
        let instance = u64::from(self.next_engine.fetch_add(1, Ordering::Relaxed));
        MetaEngine::new(
            self.variant.engine_config(),
            TafDbClient::new(Arc::clone(&self.net), me, Arc::clone(&self.pmap)),
            FileStoreClient::new(Arc::clone(&self.net), me, Arc::clone(&self.fs_layout)),
            TsClient::new(
                Arc::clone(&self.net),
                me,
                TS_NODE,
                self.config.ts_block,
                self.config.id_block,
            ),
            Arc::clone(&self.coord),
            Arc::clone(&self.cache),
            instance,
            self.config.block_size,
        )
    }

    /// The variant deployed here.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The simulated network.
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// The TafDB backend groups (metrics access).
    pub fn taf_groups(&self) -> &[TafBackendGroup] {
        &self.taf_groups
    }

    /// Aggregated shard metrics across the deployment.
    pub fn shard_metrics(&self) -> cfs_tafdb::shard::ShardMetricsSnapshot {
        let mut total = cfs_tafdb::shard::ShardMetricsSnapshot::default();
        for g in &self.taf_groups {
            let m = g.metrics_snapshot();
            total.lock_wait_ns += m.lock_wait_ns;
            total.lock_hold_ns += m.lock_hold_ns;
            total.lock_acquisitions += m.lock_acquisitions;
            total.lock_contentions += m.lock_contentions;
            total.primitives += m.primitives;
            total.primitive_failures += m.primitive_failures;
            total.txn_commits += m.txn_commits;
            total.txn_aborts += m.txn_aborts;
        }
        total
    }

    /// Creates a file system handle for a new client.
    pub fn client(&self) -> BaselineFs {
        let me = NodeId(self.next_client.fetch_add(1, Ordering::Relaxed));
        if self.variant.uses_proxy() {
            BaselineFs::via_proxy(Arc::clone(&self.net), me, self.proxies.clone())
        } else {
            BaselineFs::direct(Arc::new(self.make_engine(me)))
        }
    }

    /// Stops every group.
    pub fn shutdown(&self) {
        for g in &self.taf_groups {
            g.shutdown();
        }
        for g in &self.fs_groups {
            g.shutdown();
        }
    }
}

impl Drop for BaselineCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

//! The metadata proxy layer (namenode / MDS) of the baseline systems.
//!
//! Clients of the baselines send whole metadata operations to a proxy node,
//! which coordinates the transaction against the shard tier (paper Figure 1
//! and Figure 3 step ①). The extra client↔proxy round trip — and the fact
//! that the proxy, not the client, holds the resolution cache — is the cost
//! CFS removes with client-side metadata resolving; the `+no-proxy` ablation
//! of Figure 13 measures exactly this hop.

use std::sync::Arc;

use cfs_core::{DirEntryInfo, FileSystem};
use cfs_filestore::SetAttrPatch;
use cfs_rpc::mux::{frame, CH_APP};
use cfs_rpc::{Network, Service};
use cfs_types::codec::{Decode, DecodeError, Encode, EncodeListItem};
use cfs_types::{Attr, FileType, FsError, FsResult, InodeId, NodeId};

use crate::engine::MetaEngine;

/// One metadata/data operation shipped to a proxy.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProxyRequest {
    /// `create(path)`.
    Create(String),
    /// `mkdir(path)`.
    Mkdir(String),
    /// `unlink(path)`.
    Unlink(String),
    /// `rmdir(path)`.
    Rmdir(String),
    /// `lookup(path)`.
    Lookup(String),
    /// `getattr(path)`.
    Getattr(String),
    /// `setattr(path, patch)`.
    Setattr(String, SetAttrPatch),
    /// `readdir(path)`.
    Readdir(String),
    /// `rename(src, dst)`.
    Rename(String, String),
    /// `symlink(target, linkpath)`.
    Symlink(String, String),
    /// `readlink(path)`.
    Readlink(String),
    /// `write(path, offset, data)`.
    Write(String, u64, Vec<u8>),
    /// `read(path, offset, len)`.
    Read(String, u64, u64),
}

impl ProxyRequest {
    /// Span name for the root span a baseline client opens per operation
    /// (mirrors the `fs.*` roots of the CFS client).
    fn span_name(&self) -> &'static str {
        match self {
            ProxyRequest::Create(_) => "bl.create",
            ProxyRequest::Mkdir(_) => "bl.mkdir",
            ProxyRequest::Unlink(_) => "bl.unlink",
            ProxyRequest::Rmdir(_) => "bl.rmdir",
            ProxyRequest::Lookup(_) => "bl.lookup",
            ProxyRequest::Getattr(_) => "bl.getattr",
            ProxyRequest::Setattr(_, _) => "bl.setattr",
            ProxyRequest::Readdir(_) => "bl.readdir",
            ProxyRequest::Rename(_, _) => "bl.rename",
            ProxyRequest::Symlink(_, _) => "bl.symlink",
            ProxyRequest::Readlink(_) => "bl.readlink",
            ProxyRequest::Write(_, _, _) => "bl.write",
            ProxyRequest::Read(_, _, _) => "bl.read",
        }
    }
}

impl Encode for ProxyRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProxyRequest::Create(p) => {
                buf.push(0);
                p.encode(buf);
            }
            ProxyRequest::Mkdir(p) => {
                buf.push(1);
                p.encode(buf);
            }
            ProxyRequest::Unlink(p) => {
                buf.push(2);
                p.encode(buf);
            }
            ProxyRequest::Rmdir(p) => {
                buf.push(3);
                p.encode(buf);
            }
            ProxyRequest::Lookup(p) => {
                buf.push(4);
                p.encode(buf);
            }
            ProxyRequest::Getattr(p) => {
                buf.push(5);
                p.encode(buf);
            }
            ProxyRequest::Setattr(p, patch) => {
                buf.push(6);
                p.encode(buf);
                patch.encode(buf);
            }
            ProxyRequest::Readdir(p) => {
                buf.push(7);
                p.encode(buf);
            }
            ProxyRequest::Rename(a, b) => {
                buf.push(8);
                a.encode(buf);
                b.encode(buf);
            }
            ProxyRequest::Symlink(a, b) => {
                buf.push(9);
                a.encode(buf);
                b.encode(buf);
            }
            ProxyRequest::Readlink(p) => {
                buf.push(10);
                p.encode(buf);
            }
            ProxyRequest::Write(p, off, data) => {
                buf.push(11);
                p.encode(buf);
                off.encode(buf);
                data.encode(buf);
            }
            ProxyRequest::Read(p, off, len) => {
                buf.push(12);
                p.encode(buf);
                off.encode(buf);
                len.encode(buf);
            }
        }
    }
}

impl Decode for ProxyRequest {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => ProxyRequest::Create(String::decode(input)?),
            1 => ProxyRequest::Mkdir(String::decode(input)?),
            2 => ProxyRequest::Unlink(String::decode(input)?),
            3 => ProxyRequest::Rmdir(String::decode(input)?),
            4 => ProxyRequest::Lookup(String::decode(input)?),
            5 => ProxyRequest::Getattr(String::decode(input)?),
            6 => ProxyRequest::Setattr(String::decode(input)?, SetAttrPatch::decode(input)?),
            7 => ProxyRequest::Readdir(String::decode(input)?),
            8 => ProxyRequest::Rename(String::decode(input)?, String::decode(input)?),
            9 => ProxyRequest::Symlink(String::decode(input)?, String::decode(input)?),
            10 => ProxyRequest::Readlink(String::decode(input)?),
            11 => ProxyRequest::Write(
                String::decode(input)?,
                u64::decode(input)?,
                Vec::<u8>::decode(input)?,
            ),
            12 => ProxyRequest::Read(
                String::decode(input)?,
                u64::decode(input)?,
                u64::decode(input)?,
            ),
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

/// A wire-encodable directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WireEntry {
    /// Entry name.
    pub name: String,
    /// Inode id.
    pub ino: InodeId,
    /// Type.
    pub ftype: FileType,
}

impl EncodeListItem for WireEntry {}

impl Encode for WireEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.ino.encode(buf);
        self.ftype.encode(buf);
    }
}

impl Decode for WireEntry {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(WireEntry {
            name: String::decode(input)?,
            ino: InodeId::decode(input)?,
            ftype: FileType::decode(input)?,
        })
    }
}

/// Proxy responses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProxyResponse {
    /// Success without payload.
    Ok,
    /// An inode id.
    Ino(InodeId),
    /// An attribute record.
    Attr(Attr),
    /// Directory entries.
    Entries(Vec<WireEntry>),
    /// A string payload (readlink).
    Text(String),
    /// Data bytes.
    Data(Vec<u8>),
    /// Failure.
    Err(FsError),
}

impl Encode for ProxyResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ProxyResponse::Ok => buf.push(0),
            ProxyResponse::Ino(i) => {
                buf.push(1);
                i.encode(buf);
            }
            ProxyResponse::Attr(a) => {
                buf.push(2);
                a.encode(buf);
            }
            ProxyResponse::Entries(es) => {
                buf.push(3);
                es.encode(buf);
            }
            ProxyResponse::Text(s) => {
                buf.push(4);
                s.encode(buf);
            }
            ProxyResponse::Data(d) => {
                buf.push(5);
                d.encode(buf);
            }
            ProxyResponse::Err(e) => {
                buf.push(6);
                e.encode(buf);
            }
        }
    }
}

impl Decode for ProxyResponse {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => ProxyResponse::Ok,
            1 => ProxyResponse::Ino(InodeId::decode(input)?),
            2 => ProxyResponse::Attr(Attr::decode(input)?),
            3 => ProxyResponse::Entries(Vec::<WireEntry>::decode(input)?),
            4 => ProxyResponse::Text(String::decode(input)?),
            5 => ProxyResponse::Data(Vec::<u8>::decode(input)?),
            6 => ProxyResponse::Err(FsError::decode(input)?),
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

/// The proxy service: runs the engine server-side.
pub struct ProxyService {
    engine: Arc<MetaEngine>,
}

impl ProxyService {
    /// Wraps an engine.
    pub fn new(engine: Arc<MetaEngine>) -> Arc<ProxyService> {
        Arc::new(ProxyService { engine })
    }

    fn process(&self, req: ProxyRequest) -> ProxyResponse {
        let e = &self.engine;
        let to_resp = |r: FsResult<()>| match r {
            Ok(()) => ProxyResponse::Ok,
            Err(err) => ProxyResponse::Err(err),
        };
        match req {
            ProxyRequest::Create(p) => match e.create(&p) {
                Ok(i) => ProxyResponse::Ino(i),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Mkdir(p) => match e.mkdir(&p) {
                Ok(i) => ProxyResponse::Ino(i),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Unlink(p) => to_resp(e.unlink(&p)),
            ProxyRequest::Rmdir(p) => to_resp(e.rmdir(&p)),
            ProxyRequest::Lookup(p) => match e.lookup(&p) {
                Ok(i) => ProxyResponse::Ino(i),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Getattr(p) => match e.getattr(&p) {
                Ok(a) => ProxyResponse::Attr(a),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Setattr(p, patch) => to_resp(e.setattr(&p, patch)),
            ProxyRequest::Readdir(p) => match e.readdir(&p) {
                Ok(es) => ProxyResponse::Entries(
                    es.into_iter()
                        .map(|d| WireEntry {
                            name: d.name,
                            ino: d.ino,
                            ftype: d.ftype,
                        })
                        .collect(),
                ),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Rename(a, b) => to_resp(e.rename(&a, &b)),
            ProxyRequest::Symlink(t, l) => match e.symlink(&t, &l) {
                Ok(i) => ProxyResponse::Ino(i),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Readlink(p) => match e.readlink(&p) {
                Ok(s) => ProxyResponse::Text(s),
                Err(err) => ProxyResponse::Err(err),
            },
            ProxyRequest::Write(p, off, data) => to_resp(e.write(&p, off, &data)),
            ProxyRequest::Read(p, off, len) => match e.read(&p, off, len as usize) {
                Ok(d) => ProxyResponse::Data(d),
                Err(err) => ProxyResponse::Err(err),
            },
        }
    }
}

impl Service for ProxyService {
    fn handle(&self, _from: NodeId, payload: &[u8]) -> Vec<u8> {
        let resp = match ProxyRequest::from_bytes(payload) {
            Ok(req) => self.process(req),
            Err(e) => ProxyResponse::Err(FsError::from(e)),
        };
        resp.to_bytes()
    }
}

/// How a baseline client reaches the metadata service.
pub enum FrontEnd {
    /// Through the proxy layer: the client round-robins proxy nodes.
    Proxy {
        /// The simulated network.
        net: Arc<Network>,
        /// This client's address.
        me: NodeId,
        /// Proxy node addresses.
        proxies: Vec<NodeId>,
        /// Round-robin cursor.
        next: std::sync::atomic::AtomicUsize,
    },
    /// Directly against an engine instance (no proxy hop; the `+no-proxy`
    /// ablation).
    Direct(Arc<MetaEngine>),
}

/// A baseline file system handle.
pub struct BaselineFs {
    front: FrontEnd,
}

impl BaselineFs {
    /// Client reaching the service through proxies.
    pub fn via_proxy(net: Arc<Network>, me: NodeId, proxies: Vec<NodeId>) -> BaselineFs {
        BaselineFs {
            front: FrontEnd::Proxy {
                net,
                me,
                proxies,
                next: std::sync::atomic::AtomicUsize::new(0),
            },
        }
    }

    /// Client embedding the engine (client-side resolving).
    pub fn direct(engine: Arc<MetaEngine>) -> BaselineFs {
        BaselineFs {
            front: FrontEnd::Direct(engine),
        }
    }

    fn call(&self, req: ProxyRequest) -> FsResult<ProxyResponse> {
        match &self.front {
            FrontEnd::Proxy {
                net,
                me,
                proxies,
                next,
            } => {
                let _node = cfs_obs::trace::node_scope(me.0 as u64);
                let _op = cfs_obs::trace::root_span(req.span_name());
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let target = proxies[i % proxies.len()];
                let resp = net.call(*me, target, &frame(CH_APP, &req.to_bytes()))?;
                Ok(ProxyResponse::from_bytes(&resp)?)
            }
            FrontEnd::Direct(engine) => {
                let _node = cfs_obs::trace::node_scope(engine.taf.node().0 as u64);
                let _op = cfs_obs::trace::root_span(req.span_name());
                let svc = ProxyService {
                    engine: Arc::clone(engine),
                };
                Ok(svc.process(req))
            }
        }
    }

    fn expect_ino(&self, req: ProxyRequest) -> FsResult<InodeId> {
        match self.call(req)? {
            ProxyResponse::Ino(i) => Ok(i),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn expect_ok(&self, req: ProxyRequest) -> FsResult<()> {
        match self.call(req)? {
            ProxyResponse::Ok => Ok(()),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }
}

impl FileSystem for BaselineFs {
    fn create(&self, path: &str) -> FsResult<InodeId> {
        self.expect_ino(ProxyRequest::Create(path.to_string()))
    }

    fn mkdir(&self, path: &str) -> FsResult<InodeId> {
        self.expect_ino(ProxyRequest::Mkdir(path.to_string()))
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.expect_ok(ProxyRequest::Unlink(path.to_string()))
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.expect_ok(ProxyRequest::Rmdir(path.to_string()))
    }

    fn lookup(&self, path: &str) -> FsResult<InodeId> {
        self.expect_ino(ProxyRequest::Lookup(path.to_string()))
    }

    fn getattr(&self, path: &str) -> FsResult<Attr> {
        match self.call(ProxyRequest::Getattr(path.to_string()))? {
            ProxyResponse::Attr(a) => Ok(a),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn setattr(&self, path: &str, patch: SetAttrPatch) -> FsResult<()> {
        self.expect_ok(ProxyRequest::Setattr(path.to_string(), patch))
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntryInfo>> {
        match self.call(ProxyRequest::Readdir(path.to_string()))? {
            ProxyResponse::Entries(es) => Ok(es
                .into_iter()
                .map(|e| DirEntryInfo {
                    name: e.name,
                    ino: e.ino,
                    ftype: e.ftype,
                })
                .collect()),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        self.expect_ok(ProxyRequest::Rename(src.to_string(), dst.to_string()))
    }

    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<InodeId> {
        self.expect_ino(ProxyRequest::Symlink(
            target.to_string(),
            linkpath.to_string(),
        ))
    }

    fn readlink(&self, path: &str) -> FsResult<String> {
        match self.call(ProxyRequest::Readlink(path.to_string()))? {
            ProxyResponse::Text(s) => Ok(s),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        self.expect_ok(ProxyRequest::Write(path.to_string(), offset, data.to_vec()))
    }

    fn read(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        match self.call(ProxyRequest::Read(path.to_string(), offset, len as u64))? {
            ProxyResponse::Data(d) => Ok(d),
            ProxyResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_messages_round_trip() {
        let reqs = vec![
            ProxyRequest::Create("/a".into()),
            ProxyRequest::Setattr(
                "/b".into(),
                SetAttrPatch {
                    mode: Some(0o700),
                    ..Default::default()
                },
            ),
            ProxyRequest::Rename("/x".into(), "/y".into()),
            ProxyRequest::Write("/f".into(), 4096, vec![1, 2, 3]),
            ProxyRequest::Read("/f".into(), 0, 100),
        ];
        for r in reqs {
            assert_eq!(ProxyRequest::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        let resps = vec![
            ProxyResponse::Ok,
            ProxyResponse::Ino(InodeId(7)),
            ProxyResponse::Entries(vec![WireEntry {
                name: "x".into(),
                ino: InodeId(3),
                ftype: FileType::File,
            }]),
            ProxyResponse::Err(FsError::NotEmpty),
        ];
        for r in resps {
            assert_eq!(ProxyResponse::from_bytes(&r.to_bytes()).unwrap(), r);
        }
    }
}

//! HopsFS-like deployment preset.

use cfs_core::CfsConfig;
use cfs_types::FsResult;

use crate::variants::{BaselineCluster, Variant};

/// A HopsFS-like cluster: namenode proxy layer over NDB-style hash-partitioned
/// shards with row locks held across round trips, 2PC for cross-shard
/// transactions, and subtree-locked renames.
pub struct HopsFsCluster;

impl HopsFsCluster {
    /// Boots the deployment.
    pub fn start(config: CfsConfig, proxies: usize) -> FsResult<BaselineCluster> {
        BaselineCluster::start(Variant::HopsFs, config, proxies)
    }
}

//! The conventional metadata engine: interactive lock-based transactions.
//!
//! This engine reproduces the execution model of the paper's Figures 2–3:
//! the coordinator (proxy or client) **acquires exclusive row locks via RPC**
//! (`SELECT ... FOR UPDATE`), computes the mutation client-side while the
//! locks are held across network round trips, and commits through single-
//! shard commit or two-phase commit. Every lock wait, lock hold interval, and
//! extra round trip is physically real, which is what regenerates the
//! lock-overhead breakdown of Figure 4.
//!
//! [`EngineConfig`] selects the schema/partitioning/engine axes that
//! distinguish HopsFS-like, InfiniFS-like, and the CFS ablation variants.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfs_filestore::{placement_hash, FileStoreClient, SetAttrPatch};
use cfs_tafdb::api::{TafRequest, TafResponse, TxnRequest, TxnResponse};
use cfs_tafdb::primitive::{Primitive, UpdateSpec};
use cfs_tafdb::{TafDbClient, TsClient};
use cfs_types::record::{FieldAssign, LwwField, NumField, Pred};
use cfs_types::{
    Attr, BlockId, Cond, FileType, FsError, FsResult, InodeId, Key, Record, ShardId, Timestamp,
    ROOT_INODE,
};
use parking_lot::{Condvar, Mutex, RwLock};

/// Reserved name prefix of InfiniFS-style file-attribute rows, grouped with
/// the parent's children ("content" metadata grouped with the directory).
pub const FATTR_PREFIX: &str = "\u{1}fattr\u{1}";

/// How records are spread over shards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// NDB-style hash partitioning on the row's `kID` (HopsFS): all rows
    /// keyed by the same parent stay together, but a directory's own row
    /// lives on its *grandparent's* shard — `create` becomes cross-shard.
    KidHash,
    /// Range partitioning on `kID` (InfiniFS grouping / CFS): a directory's
    /// attribute record and its children's rows co-locate.
    KidRange,
}

/// Where attributes live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrSchema {
    /// Attributes inline in the inode row (HopsFS `inodes` table).
    Inline,
    /// Decoupled records; file attributes in rows grouped with the parent
    /// (InfiniFS access/content grouping).
    SplitWithParent,
    /// Decoupled records; file attributes in rows placed by the file's own
    /// id (CFS-base: everything range-partitioned in TafDB).
    SplitByIno,
    /// Decoupled records; file attributes offloaded to FileStore
    /// (+new-org and beyond).
    SplitFileStore,
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Display name used in benchmark output.
    pub name: String,
    /// Partitioning axis.
    pub placement: Placement,
    /// Attribute schema axis.
    pub schema: AttrSchema,
    /// When set, mutations use CFS' single-shard atomic primitives instead
    /// of interactive lock-based transactions (+primitives ablation).
    pub use_primitives: bool,
}

/// The engine: all metadata operations against the shard tier.
pub struct MetaEngine {
    pub(crate) config: EngineConfig,
    pub(crate) taf: TafDbClient,
    pub(crate) fs: FileStoreClient,
    pub(crate) ts: TsClient,
    txn_counter: AtomicU64,
    /// Shared entry resolution cache: `(parent, name) → (ino, type)`.
    cache: Arc<EntryCache>,
    /// Coordinator-level locks shared across all proxies of a deployment
    /// (HopsFS subtree locks / InfiniFS rename coordination).
    pub(crate) coord: Arc<InodeLocks>,
    /// Data block size.
    pub block_size: u64,
    /// Time a coordinator spends acquiring remote row locks (the lock phase
    /// of Figure 3's interactive transaction).
    coord_lock_ns: Arc<cfs_obs::metrics::Histogram>,
    /// Time a coordinator spends in commit (single-shard or 2PC).
    coord_commit_ns: Arc<cfs_obs::metrics::Histogram>,
}

/// Maximum cached resolutions before clearing.
const CACHE_CAP: usize = 65_536;

/// A coherent resolution cache shared by every proxy/engine instance of one
/// deployment: invalidations from any coordinator are visible to all, like
/// the consistency-checked path caches of the real systems.
#[derive(Default)]
pub struct EntryCache {
    map: RwLock<HashMap<(InodeId, String), (InodeId, FileType)>>,
}

impl MetaEngine {
    /// Builds an engine over the component clients.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: EngineConfig,
        taf: TafDbClient,
        fs: FileStoreClient,
        ts: TsClient,
        coord: Arc<InodeLocks>,
        cache: Arc<EntryCache>,
        instance: u64,
        block_size: u64,
    ) -> MetaEngine {
        let reg = cfs_obs::metrics::node(taf.node().0 as u64);
        MetaEngine {
            config,
            taf,
            fs,
            ts,
            txn_counter: AtomicU64::new(instance << 32),
            cache,
            coord,
            block_size,
            coord_lock_ns: reg.histogram("coord_lock_ns"),
            coord_commit_ns: reg.histogram("coord_commit_ns"),
        }
    }

    fn next_txn(&self) -> u64 {
        self.txn_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The shard owning records with id component `kid`. Resolved against
    /// the live partition map on every call so installed map epochs are
    /// honored immediately.
    pub fn shard_of(&self, kid: InodeId) -> ShardId {
        match self.config.placement {
            Placement::KidHash => {
                let num_shards = self.taf.partition_map().num_shards() as u64;
                ShardId((placement_hash(kid) % num_shards) as u32)
            }
            Placement::KidRange => self.taf.partition_map().shard_for(kid),
        }
    }

    /// Issues `req` to the shard owning `kid`, re-resolving against the live
    /// partition map and retrying when the shard answers `WrongShard` after
    /// a split's epoch bump (the proxy shares the deployment map, so the
    /// recomputed route is fresh once the new epoch is installed).
    fn routed(&self, kid: InodeId, req: &TafRequest) -> FsResult<TafResponse> {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match self.taf.request(self.shard_of(kid), req) {
                Err(FsError::WrongShard(_)) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                other => return other,
            }
        }
    }

    fn get_row(&self, key: &Key) -> FsResult<Option<Record>> {
        match self.routed(key.kid, &TafRequest::Get(key.clone()))? {
            TafResponse::Record(r) => Ok(r),
            TafResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn put_row(&self, key: Key, rec: Record) -> FsResult<()> {
        let kid = key.kid;
        match self.routed(kid, &TafRequest::Put(key, rec))? {
            TafResponse::Ok => Ok(()),
            TafResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    fn execute_prim_at(&self, kid: InodeId, prim: Primitive) -> FsResult<()> {
        match self.routed(kid, &TafRequest::Execute(prim))? {
            TafResponse::Executed(_) => Ok(()),
            TafResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    // ---- resolution -------------------------------------------------------

    fn cache_get(&self, parent: InodeId, name: &str) -> Option<(InodeId, FileType)> {
        self.cache
            .map
            .read()
            .get(&(parent, name.to_string()))
            .copied()
    }

    fn cache_put(&self, parent: InodeId, name: &str, v: (InodeId, FileType)) {
        // Directory entries only — same policy as the CFS client, so lookup
        // comparisons measure the metadata path, not cache luck.
        if v.1 != FileType::Dir {
            return;
        }
        let mut c = self.cache.map.write();
        if c.len() >= CACHE_CAP {
            c.clear();
        }
        c.insert((parent, name.to_string()), v);
    }

    fn cache_forget(&self, parent: InodeId, name: &str) {
        self.cache.map.write().remove(&(parent, name.to_string()));
    }

    /// Resolves one component.
    fn resolve_entry(&self, parent: InodeId, name: &str) -> FsResult<(InodeId, FileType)> {
        if let Some(hit) = self.cache_get(parent, name) {
            return Ok(hit);
        }
        let rec = self
            .get_row(&Key::entry(parent, name))?
            .ok_or(FsError::NotFound)?;
        let ino = rec.id.ok_or(FsError::Corrupted("row lacks id".into()))?;
        let ftype = rec
            .ftype
            .ok_or(FsError::Corrupted("row lacks type".into()))?;
        self.cache_put(parent, name, (ino, ftype));
        Ok((ino, ftype))
    }

    /// Walks to the directory containing the last component.
    fn resolve_dir(&self, comps: &[&str]) -> FsResult<InodeId> {
        let mut cur = ROOT_INODE;
        for c in comps {
            let (ino, ftype) = self.resolve_entry(cur, c)?;
            if ftype != FileType::Dir {
                return Err(FsError::NotDir);
            }
            cur = ino;
        }
        Ok(cur)
    }

    fn resolve_parent_of(&self, p: &str) -> FsResult<(InodeId, String)> {
        let (comps, name) = cfs_core::path::split_parent(p)?;
        Ok((self.resolve_dir(&comps)?, name.to_string()))
    }

    /// Key of the row carrying a directory's mutable metadata (the row the
    /// create/unlink transactions lock).
    fn dir_meta_key(&self, dir: InodeId) -> Key {
        // Every schema keeps an `/_ATTR` record per directory (for Inline it
        // doubles as the parent-pointer record and counter row).
        Key::attr(dir)
    }

    /// Key of a file's attribute row (schemas that keep it in the DB).
    fn fattr_key(&self, parent: InodeId, name: &str, ino: InodeId) -> Key {
        match self.config.schema {
            AttrSchema::SplitWithParent => Key::entry(parent, format!("{FATTR_PREFIX}{name}")),
            _ => Key::attr(ino),
        }
    }

    // ---- interactive transactions ----------------------------------------

    fn lock_and_read(&self, txn: u64, key: &Key) -> FsResult<Option<Record>> {
        let _span = cfs_obs::trace::span("bl.lock_and_read");
        let _sw = cfs_obs::Stopwatch::start(Arc::clone(&self.coord_lock_ns));
        match self.taf.txn_request(
            self.shard_of(key.kid),
            &TxnRequest::LockAndRead {
                txn,
                key: key.clone(),
            },
        )? {
            TxnResponse::Locked(r) => Ok(r),
            TxnResponse::Err(e) => Err(e),
            other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
        }
    }

    /// Commits buffered writes: single-shard fast commit, or 2PC when the
    /// writes span shards. `locked_shards` also get aborts on failure.
    fn commit_txn(
        &self,
        txn: u64,
        writes: Vec<(Key, Option<Record>)>,
        locked_shards: &[ShardId],
    ) -> FsResult<()> {
        let _span = cfs_obs::trace::span("bl.commit");
        let _sw = cfs_obs::Stopwatch::start(Arc::clone(&self.coord_commit_ns));
        let mut by_shard: HashMap<ShardId, Vec<(Key, Option<Record>)>> = HashMap::new();
        for (k, r) in writes {
            by_shard
                .entry(self.shard_of(k.kid))
                .or_default()
                .push((k, r));
        }
        let mut all_shards: Vec<ShardId> = by_shard
            .keys()
            .copied()
            .chain(locked_shards.iter().copied())
            .collect();
        all_shards.sort_by_key(|s| s.0);
        all_shards.dedup();
        let result = if by_shard.len() <= 1 && all_shards.len() <= 1 {
            // Single-shard: one commit round trip.
            let shard = all_shards.first().copied().unwrap_or(ShardId(0));
            let writes = by_shard.into_values().next().unwrap_or_default();
            match self
                .taf
                .txn_request(shard, &TxnRequest::Commit { txn, writes })?
            {
                TxnResponse::Ok => Ok(()),
                TxnResponse::Err(e) => Err(e),
                other => Err(FsError::Corrupted(format!("unexpected {other:?}"))),
            }
        } else {
            // Two-phase commit across every involved shard.
            let mut prepared = Vec::new();
            let mut fail: Option<FsError> = None;
            for (&shard, w) in &by_shard {
                match self.taf.txn_request(
                    shard,
                    &TxnRequest::Prepare {
                        txn,
                        writes: w.clone(),
                    },
                ) {
                    Ok(TxnResponse::Ok) => prepared.push(shard),
                    Ok(TxnResponse::Err(e)) => {
                        fail = Some(e);
                        break;
                    }
                    Ok(other) => {
                        fail = Some(FsError::Corrupted(format!("unexpected {other:?}")));
                        break;
                    }
                    Err(e) => {
                        fail = Some(e);
                        break;
                    }
                }
            }
            match fail {
                Some(e) => {
                    for shard in &all_shards {
                        let _ = self.taf.txn_request(*shard, &TxnRequest::Abort { txn });
                    }
                    return Err(e);
                }
                None => {
                    for shard in &all_shards {
                        if prepared.contains(shard) {
                            match self
                                .taf
                                .txn_request(*shard, &TxnRequest::CommitPrepared { txn })
                            {
                                Ok(TxnResponse::Err(e)) => return Err(e),
                                Ok(_) => {}
                                Err(e) => return Err(e),
                            }
                        } else {
                            // Lock-only shard: release via abort.
                            let _ = self.taf.txn_request(*shard, &TxnRequest::Abort { txn });
                        }
                    }
                    Ok(())
                }
            }
        };
        result
    }

    fn abort_txn(&self, txn: u64, shards: &[ShardId]) {
        let mut s: Vec<ShardId> = shards.to_vec();
        s.sort_by_key(|s| s.0);
        s.dedup();
        for shard in s {
            let _ = self.taf.txn_request(shard, &TxnRequest::Abort { txn });
        }
    }

    // ---- metadata operations ----------------------------------------------

    /// `create` / `mkdir` / `symlink` shared implementation.
    fn create_node(&self, p: &str, ftype: FileType, symlink: Option<String>) -> FsResult<InodeId> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let ino = self.ts.alloc_id()?;
        let ts = self.ts.timestamp()?;
        let now = ts.raw();
        if self.config.use_primitives {
            return self.create_node_primitives(parent, &name, ino, ftype, symlink, ts);
        }

        let txn = self.next_txn();
        let pkey = self.dir_meta_key(parent);
        let locked_shard = self.shard_of(pkey.kid);
        // Figure 3 step ②: read + write-lock the parent directory's row.
        let parent_row = match self.lock_and_read(txn, &pkey) {
            Ok(Some(r)) => r,
            Ok(None) => {
                self.abort_txn(txn, &[locked_shard]);
                return Err(FsError::NotFound);
            }
            Err(e) => {
                self.abort_txn(txn, &[locked_shard]);
                return Err(e);
            }
        };
        if parent_row.ftype != Some(FileType::Dir) {
            self.abort_txn(txn, &[locked_shard]);
            return Err(FsError::NotDir);
        }
        // Existence check of the new name (read, no lock needed: the insert
        // races are resolved by the parent row lock in this engine).
        match self.get_row(&Key::entry(parent, &name)) {
            Ok(Some(_)) => {
                self.abort_txn(txn, &[locked_shard]);
                return Err(FsError::AlreadyExists);
            }
            Ok(None) => {}
            Err(e) => {
                self.abort_txn(txn, &[locked_shard]);
                return Err(e);
            }
        }

        // Compose the writes.
        let mut writes: Vec<(Key, Option<Record>)> = Vec::new();
        let mut child = match self.config.schema {
            AttrSchema::Inline => full_record(ino, ftype, now, ts, Some(parent)),
            _ => Record::id_record(ino, ftype),
        };
        child.symlink_target = symlink.clone();
        writes.push((Key::entry(parent, &name), Some(child)));
        let mut updated_parent = parent_row.clone();
        updated_parent.apply(&FieldAssign::Delta {
            field: NumField::Children,
            delta: 1,
        });
        if ftype == FileType::Dir {
            updated_parent.apply(&FieldAssign::Delta {
                field: NumField::Links,
                delta: 1,
            });
        }
        updated_parent.apply(&FieldAssign::Set {
            field: LwwField::Mtime,
            value: now,
            ts,
        });
        writes.push((pkey, Some(updated_parent)));
        // Attribute record per schema.
        match (self.config.schema, ftype) {
            (AttrSchema::Inline, FileType::Dir) => {
                // Parent-pointer + counter record for the new directory.
                let mut attr = Record::dir_attr_record(now, ts);
                attr.id = Some(parent);
                writes.push((Key::attr(ino), Some(attr)));
            }
            (AttrSchema::Inline, _) => {}
            (_, FileType::Dir) => {
                let mut attr = Record::dir_attr_record(now, ts);
                attr.id = Some(parent);
                writes.push((Key::attr(ino), Some(attr)));
            }
            (AttrSchema::SplitWithParent, _) => {
                writes.push((
                    self.fattr_key(parent, &name, ino),
                    Some(full_record(ino, ftype, now, ts, Some(parent))),
                ));
            }
            (AttrSchema::SplitByIno, _) => {
                writes.push((
                    Key::attr(ino),
                    Some(full_record(ino, ftype, now, ts, Some(parent))),
                ));
            }
            (AttrSchema::SplitFileStore, _) => {
                // Offloaded: write the FileStore attribute before linking.
                let mut attr = match ftype {
                    FileType::Symlink => {
                        Attr::new_symlink(ino, now, symlink.clone().unwrap_or_default())
                    }
                    _ => Attr::new_file(ino, now),
                };
                attr.lww_ts = ts;
                if let Err(e) = self.fs.put_attr(attr) {
                    self.abort_txn(txn, &[locked_shard]);
                    return Err(e);
                }
            }
        }
        match self.commit_txn(txn, writes, &[locked_shard]) {
            Ok(()) => {
                self.cache_put(parent, &name, (ino, ftype));
                Ok(ino)
            }
            Err(e) => Err(e),
        }
    }

    /// CFS-style primitive path for the ablation variants.
    fn create_node_primitives(
        &self,
        parent: InodeId,
        name: &str,
        ino: InodeId,
        ftype: FileType,
        symlink: Option<String>,
        ts: Timestamp,
    ) -> FsResult<InodeId> {
        let now = ts.raw();
        // Attribute first (deterministic order), then the namespace link.
        match (self.config.schema, ftype) {
            (_, FileType::Dir) => {
                let mut attr = Record::dir_attr_record(now, ts);
                attr.id = Some(parent);
                self.put_row(Key::attr(ino), attr)?;
            }
            (AttrSchema::SplitFileStore, _) => {
                let mut attr = match ftype {
                    FileType::Symlink => {
                        Attr::new_symlink(ino, now, symlink.clone().unwrap_or_default())
                    }
                    _ => Attr::new_file(ino, now),
                };
                attr.lww_ts = ts;
                self.fs.put_attr(attr)?;
            }
            _ => {
                self.put_row(
                    self.fattr_key(parent, name, ino),
                    full_record(ino, ftype, now, ts, Some(parent)),
                )?;
            }
        }
        let mut child = Record::id_record(ino, ftype);
        child.symlink_target = symlink;
        let links_delta = i64::from(ftype == FileType::Dir);
        let prim = Primitive::insert_with_update(
            Key::entry(parent, name),
            child,
            UpdateSpec::new(
                Cond::require(Key::attr(parent), vec![Pred::TypeIs(FileType::Dir)]),
                vec![
                    FieldAssign::Delta {
                        field: NumField::Children,
                        delta: 1,
                    },
                    FieldAssign::Delta {
                        field: NumField::Links,
                        delta: links_delta,
                    },
                    FieldAssign::Set {
                        field: LwwField::Mtime,
                        value: now,
                        ts,
                    },
                ],
            ),
        );
        self.execute_prim_at(parent, prim)?;
        self.cache_put(parent, name, (ino, ftype));
        Ok(ino)
    }

    /// `unlink` / `rmdir` shared implementation.
    fn remove_node(&self, p: &str, dir: bool) -> FsResult<()> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        match (dir, ftype) {
            (true, FileType::Dir) | (false, FileType::File) | (false, FileType::Symlink) => {}
            (true, _) => return Err(FsError::NotDir),
            (false, FileType::Dir) => return Err(FsError::IsDir),
        }
        let ts = self.ts.timestamp()?;
        if self.config.use_primitives {
            return self.remove_node_primitives(parent, &name, ino, ftype, ts);
        }
        let txn = self.next_txn();
        let pkey = self.dir_meta_key(parent);
        let mut locked = vec![self.shard_of(pkey.kid)];
        let parent_row = match self.lock_and_read(txn, &pkey) {
            Ok(Some(r)) => r,
            Ok(None) => {
                self.abort_txn(txn, &locked);
                return Err(FsError::NotFound);
            }
            Err(e) => {
                self.abort_txn(txn, &locked);
                return Err(e);
            }
        };
        // Lock and check the victim's row(s).
        let entry_key = Key::entry(parent, &name);
        locked.push(self.shard_of(entry_key.kid));
        let victim = match self.lock_and_read(txn, &entry_key) {
            Ok(Some(r)) => r,
            Ok(None) => {
                self.abort_txn(txn, &locked);
                self.cache_forget(parent, &name);
                return Err(FsError::NotFound);
            }
            Err(e) => {
                self.abort_txn(txn, &locked);
                return Err(e);
            }
        };
        if victim.id != Some(ino) {
            self.abort_txn(txn, &locked);
            self.cache_forget(parent, &name);
            return Err(FsError::Conflict);
        }
        let mut writes: Vec<(Key, Option<Record>)> = Vec::new();
        if dir {
            // Emptiness check on the directory's own counter row.
            let dkey = Key::attr(ino);
            locked.push(self.shard_of(dkey.kid));
            match self.lock_and_read(txn, &dkey) {
                Ok(Some(r)) => {
                    if r.children.unwrap_or(0) > 0 {
                        self.abort_txn(txn, &locked);
                        return Err(FsError::NotEmpty);
                    }
                    writes.push((dkey, None));
                }
                Ok(None) => {
                    self.abort_txn(txn, &locked);
                    return Err(FsError::Corrupted("dir lacks attr row".into()));
                }
                Err(e) => {
                    self.abort_txn(txn, &locked);
                    return Err(e);
                }
            }
        }
        writes.push((entry_key, None));
        match self.config.schema {
            AttrSchema::SplitWithParent if !dir => {
                writes.push((self.fattr_key(parent, &name, ino), None));
            }
            AttrSchema::SplitByIno if !dir => {
                let k = Key::attr(ino);
                locked.push(self.shard_of(k.kid));
                writes.push((k, None));
            }
            _ => {}
        }
        let mut updated_parent = parent_row;
        updated_parent.apply(&FieldAssign::Delta {
            field: NumField::Children,
            delta: -1,
        });
        if dir {
            updated_parent.apply(&FieldAssign::Delta {
                field: NumField::Links,
                delta: -1,
            });
        }
        updated_parent.apply(&FieldAssign::Set {
            field: LwwField::Mtime,
            value: ts.raw(),
            ts,
        });
        writes.push((pkey, Some(updated_parent)));
        self.commit_txn(txn, writes, &locked)?;
        self.cache_forget(parent, &name);
        if self.config.schema == AttrSchema::SplitFileStore && !dir {
            let _ = self.fs.delete_file(ino);
        }
        Ok(())
    }

    fn remove_node_primitives(
        &self,
        parent: InodeId,
        name: &str,
        ino: InodeId,
        ftype: FileType,
        ts: Timestamp,
    ) -> FsResult<()> {
        let dir = ftype == FileType::Dir;
        if dir {
            let purge = Primitive {
                deletes: vec![Cond::require(
                    Key::attr(ino),
                    vec![Pred::TypeIs(FileType::Dir), Pred::ChildrenEq(0)],
                )],
                ..Primitive::default()
            };
            self.execute_prim_at(ino, purge)?;
        }
        let links_delta = if dir { -1 } else { 0 };
        let mut deletes = vec![Cond::require(
            Key::entry(parent, name),
            vec![Pred::IdEq(ino)],
        )];
        if self.config.schema == AttrSchema::SplitWithParent && !dir {
            deletes.push(Cond::if_exist(
                self.fattr_key(parent, name, ino),
                Vec::new(),
            ));
        }
        let prim = Primitive {
            deletes,
            update: Some(UpdateSpec::new(
                Cond::require(Key::attr(parent), vec![Pred::TypeIs(FileType::Dir)]),
                vec![
                    FieldAssign::Delta {
                        field: NumField::Children,
                        delta: -1,
                    },
                    FieldAssign::Delta {
                        field: NumField::Links,
                        delta: links_delta,
                    },
                    FieldAssign::Set {
                        field: LwwField::Mtime,
                        value: ts.raw(),
                        ts,
                    },
                ],
            )),
            ..Primitive::default()
        };
        self.execute_prim_at(parent, prim)?;
        self.cache_forget(parent, name);
        match self.config.schema {
            AttrSchema::SplitByIno if !dir => {
                let _ = self.routed(ino, &TafRequest::Delete(Key::attr(ino)));
            }
            AttrSchema::SplitFileStore if !dir => {
                let _ = self.fs.delete_file(ino);
            }
            _ => {}
        }
        Ok(())
    }

    // ---- public operations -------------------------------------------------

    /// Creates a regular file.
    pub fn create(&self, p: &str) -> FsResult<InodeId> {
        self.create_node(p, FileType::File, None)
    }

    /// Creates a directory.
    pub fn mkdir(&self, p: &str) -> FsResult<InodeId> {
        self.create_node(p, FileType::Dir, None)
    }

    /// Creates a symlink.
    pub fn symlink(&self, target: &str, linkpath: &str) -> FsResult<InodeId> {
        self.create_node(linkpath, FileType::Symlink, Some(target.to_string()))
    }

    /// Removes a file or symlink.
    pub fn unlink(&self, p: &str) -> FsResult<()> {
        self.remove_node(p, false)
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, p: &str) -> FsResult<()> {
        self.remove_node(p, true)
    }

    /// Resolves a path.
    pub fn lookup(&self, p: &str) -> FsResult<InodeId> {
        let comps = cfs_core::path::split(p)?;
        if comps.is_empty() {
            return Ok(ROOT_INODE);
        }
        let parent = self.resolve_dir(&comps[..comps.len() - 1])?;
        Ok(self.resolve_entry(parent, comps[comps.len() - 1])?.0)
    }

    /// Reads a symlink target.
    pub fn readlink(&self, p: &str) -> FsResult<String> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let rec = self
            .get_row(&Key::entry(parent, &name))?
            .ok_or(FsError::NotFound)?;
        if rec.ftype != Some(FileType::Symlink) {
            return Err(FsError::Invalid("not a symlink".into()));
        }
        rec.symlink_target
            .ok_or(FsError::Corrupted("symlink lacks target".into()))
    }

    /// Full attribute fetch.
    pub fn getattr(&self, p: &str) -> FsResult<Attr> {
        let comps = cfs_core::path::split(p)?;
        if comps.is_empty() {
            let rec = self
                .get_row(&Key::attr(ROOT_INODE))?
                .ok_or(FsError::NotFound)?;
            return rec.to_dir_attr(ROOT_INODE);
        }
        let parent = self.resolve_dir(&comps[..comps.len() - 1])?;
        let name = comps[comps.len() - 1];
        let (ino, ftype) = self.resolve_entry(parent, name)?;
        match (self.config.schema, ftype) {
            (_, FileType::Dir) => {
                let rec = self.get_row(&Key::attr(ino))?.ok_or(FsError::NotFound)?;
                rec.to_dir_attr(ino)
            }
            (AttrSchema::Inline, _) => {
                let rec = self
                    .get_row(&Key::entry(parent, name))?
                    .ok_or(FsError::NotFound)?;
                record_to_attr(&rec, ino)
            }
            (AttrSchema::SplitFileStore, _) => self.fs.get_attr(ino)?.ok_or(FsError::NotFound),
            _ => {
                let rec = self
                    .get_row(&self.fattr_key(parent, name, ino))?
                    .ok_or(FsError::NotFound)?;
                record_to_attr(&rec, ino)
            }
        }
    }

    /// Partial attribute update.
    pub fn setattr(&self, p: &str, patch: SetAttrPatch) -> FsResult<()> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        let ts = self.ts.timestamp()?;
        if self.config.schema == AttrSchema::SplitFileStore && ftype != FileType::Dir {
            return self.fs.set_attr(ino, patch, ts);
        }
        let key = match (self.config.schema, ftype) {
            (_, FileType::Dir) => Key::attr(ino),
            (AttrSchema::Inline, _) => Key::entry(parent, &name),
            _ => self.fattr_key(parent, &name, ino),
        };
        if self.config.use_primitives {
            let mut assigns = Vec::new();
            if let Some(m) = patch.mode {
                assigns.push(FieldAssign::Set {
                    field: LwwField::Mode,
                    value: u64::from(m),
                    ts,
                });
            }
            if let Some(t) = patch.mtime {
                assigns.push(FieldAssign::Set {
                    field: LwwField::Mtime,
                    value: t,
                    ts,
                });
            }
            if let Some(t) = patch.atime {
                assigns.push(FieldAssign::Set {
                    field: LwwField::Atime,
                    value: t,
                    ts,
                });
            }
            if let Some(u) = patch.uid {
                assigns.push(FieldAssign::Set {
                    field: LwwField::Uid,
                    value: u64::from(u),
                    ts,
                });
            }
            if let Some(g) = patch.gid {
                assigns.push(FieldAssign::Set {
                    field: LwwField::Gid,
                    value: u64::from(g),
                    ts,
                });
            }
            let prim = Primitive {
                update: Some(UpdateSpec::new(
                    Cond::require(key.clone(), Vec::new()),
                    assigns,
                )),
                ..Primitive::default()
            };
            return self.execute_prim_at(key.kid, prim);
        }
        // Locking path: read + lock, modify, commit.
        let txn = self.next_txn();
        let shard = self.shard_of(key.kid);
        let mut rec = match self.lock_and_read(txn, &key) {
            Ok(Some(r)) => r,
            Ok(None) => {
                self.abort_txn(txn, &[shard]);
                return Err(FsError::NotFound);
            }
            Err(e) => {
                self.abort_txn(txn, &[shard]);
                return Err(e);
            }
        };
        if let Some(m) = patch.mode {
            rec.apply(&FieldAssign::Set {
                field: LwwField::Mode,
                value: u64::from(m),
                ts,
            });
        }
        if let Some(t) = patch.mtime {
            rec.apply(&FieldAssign::Set {
                field: LwwField::Mtime,
                value: t,
                ts,
            });
        }
        if let Some(t) = patch.atime {
            rec.apply(&FieldAssign::Set {
                field: LwwField::Atime,
                value: t,
                ts,
            });
        }
        if let Some(u) = patch.uid {
            rec.apply(&FieldAssign::Set {
                field: LwwField::Uid,
                value: u64::from(u),
                ts,
            });
        }
        if let Some(g) = patch.gid {
            rec.apply(&FieldAssign::Set {
                field: LwwField::Gid,
                value: u64::from(g),
                ts,
            });
        }
        if let Some(s) = patch.size {
            let cur = rec.size.unwrap_or(0);
            rec.apply(&FieldAssign::Delta {
                field: NumField::Size,
                delta: s as i64 - cur,
            });
        }
        self.commit_txn(txn, vec![(key, Some(rec))], &[shard])
    }

    /// Directory listing.
    pub fn readdir(&self, p: &str) -> FsResult<Vec<cfs_core::DirEntryInfo>> {
        let comps = cfs_core::path::split(p)?;
        let dir = self.resolve_dir(&comps)?;
        let mut out = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let resp = self.routed(
                dir,
                &TafRequest::Scan {
                    dir,
                    after: after.clone(),
                    limit: 1024,
                },
            )?;
            let page = match resp {
                TafResponse::Entries(es) => es,
                TafResponse::Err(e) => return Err(e),
                other => return Err(FsError::Corrupted(format!("unexpected {other:?}"))),
            };
            let done = page.len() < 1024;
            after = page.last().map(|e| e.name.clone());
            for e in page {
                if e.name.starts_with(FATTR_PREFIX) {
                    continue;
                }
                let ino = e
                    .record
                    .id
                    .ok_or(FsError::Corrupted("row lacks id".into()))?;
                let ftype = e
                    .record
                    .ftype
                    .ok_or(FsError::Corrupted("row lacks type".into()))?;
                out.push(cfs_core::DirEntryInfo {
                    name: e.name,
                    ino,
                    ftype,
                });
            }
            if done {
                break;
            }
        }
        Ok(out)
    }

    // ---- data path ----------------------------------------------------------

    /// Writes file data; block storage in FileStore, size/mtime maintenance
    /// per schema.
    pub fn write(&self, p: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        if ftype == FileType::Dir {
            return Err(FsError::IsDir);
        }
        let ts = self.ts.timestamp()?;
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let idx = (abs / self.block_size) as u32;
            let within = (abs % self.block_size) as usize;
            let take = (self.block_size as usize - within).min(data.len() - pos);
            let block = BlockId { ino, index: idx };
            let payload = if within == 0 && take as u64 == self.block_size {
                data[pos..pos + take].to_vec()
            } else {
                let mut existing = self.fs.read_block(block)?.unwrap_or_default();
                if existing.len() < within + take {
                    existing.resize(within + take, 0);
                }
                existing[within..within + take].copy_from_slice(&data[pos..pos + take]);
                existing
            };
            self.fs
                .write_block(block, abs - within as u64, payload, ts)?;
            pos += take;
        }
        // Size/mtime maintenance: FileStore schemas get it piggybacked on the
        // block write; DB schemas pay a metadata transaction.
        if self.config.schema != AttrSchema::SplitFileStore {
            let end = offset + data.len() as u64;
            let cur = self.getattr(p)?;
            if end > cur.size {
                self.setattr(
                    p,
                    SetAttrPatch {
                        size: Some(end),
                        mtime: Some(ts.raw()),
                        ..Default::default()
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Reads file data.
    pub fn read(&self, p: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        if ftype == FileType::Dir {
            return Err(FsError::IsDir);
        }
        let attr = self.getattr(p)?;
        if offset >= attr.size {
            return Ok(Vec::new());
        }
        let len = len.min((attr.size - offset) as usize);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let abs = offset + out.len() as u64;
            let idx = (abs / self.block_size) as u32;
            let within = (abs % self.block_size) as usize;
            let take = (self.block_size as usize - within).min(len - out.len());
            let block = self
                .fs
                .read_block(BlockId { ino, index: idx })?
                .unwrap_or_default();
            let end = (within + take).min(block.len());
            if within < block.len() {
                out.extend_from_slice(&block[within..end]);
            }
            let copied = end.saturating_sub(within);
            out.resize(out.len() + take - copied, 0);
        }
        Ok(out)
    }

    /// Rename: always the conventional path (no fast path in the baselines —
    /// HopsFS takes subtree locks, InfiniFS routes every rename through its
    /// coordinator).
    pub fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        let (src_parent, src_name) = self.resolve_parent_of(src)?;
        let (dst_parent, dst_name) = self.resolve_parent_of(dst)?;
        if src_parent == dst_parent && src_name == dst_name {
            return match self.get_row(&Key::entry(src_parent, &src_name))? {
                Some(_) => Ok(()),
                None => Err(FsError::NotFound),
            };
        }
        let (src_ino, src_type) = self.resolve_entry(src_parent, &src_name)?;

        // Coordinator-level locks: HopsFS-style subtree locking serializes on
        // the parents and the moved inode.
        let _guard = self.coord.lock(vec![src_parent, dst_parent, src_ino]);

        // Loop check for directory moves via the parent-pointer records.
        if src_type == FileType::Dir {
            let mut cur = dst_parent;
            for _ in 0..4096 {
                if cur == src_ino {
                    return Err(FsError::Loop);
                }
                if cur == ROOT_INODE {
                    break;
                }
                let rec = self
                    .get_row(&Key::attr(cur))?
                    .ok_or(FsError::Corrupted("missing parent pointer".into()))?;
                cur = rec
                    .id
                    .ok_or(FsError::Corrupted("attr lacks parent".into()))?;
            }
        }

        let ts = self.ts.timestamp()?;
        let now = ts.raw();
        let txn = self.next_txn();
        let mut locked: Vec<ShardId> = Vec::new();
        let fail = |e: FsError, engine: &Self, locked: &[ShardId]| -> FsResult<()> {
            engine.abort_txn(txn, locked);
            Err(e)
        };

        // Lock all rows in global key order.
        let src_pkey = self.dir_meta_key(src_parent);
        let dst_pkey = self.dir_meta_key(dst_parent);
        let src_ekey = Key::entry(src_parent, &src_name);
        let dst_ekey = Key::entry(dst_parent, &dst_name);
        let mut lock_keys = vec![
            src_pkey.clone(),
            dst_pkey.clone(),
            src_ekey.clone(),
            dst_ekey.clone(),
        ];
        cfs_tafdb::locking::sort_lock_keys(&mut lock_keys);
        lock_keys.dedup();
        let mut rows: HashMap<Key, Option<Record>> = HashMap::new();
        for k in &lock_keys {
            locked.push(self.shard_of(k.kid));
            match self.lock_and_read(txn, k) {
                Ok(r) => {
                    rows.insert(k.clone(), r);
                }
                Err(e) => return fail(e, self, &locked),
            }
        }
        let src_prow = match rows.get(&src_pkey).cloned().flatten() {
            Some(r) => r,
            None => return fail(FsError::NotFound, self, &locked),
        };
        let dst_prow = match rows.get(&dst_pkey).cloned().flatten() {
            Some(r) => r,
            None => return fail(FsError::NotFound, self, &locked),
        };
        let src_row = match rows.get(&src_ekey).cloned().flatten() {
            Some(r) => r,
            None => {
                self.cache_forget(src_parent, &src_name);
                return fail(FsError::NotFound, self, &locked);
            }
        };
        if src_row.id != Some(src_ino) {
            self.cache_forget(src_parent, &src_name);
            return fail(FsError::Conflict, self, &locked);
        }
        let dst_row = rows.get(&dst_ekey).cloned().flatten();
        let mut replaced: Option<(InodeId, FileType)> = None;
        if let Some(d) = &dst_row {
            let d_ino = match d.id {
                Some(i) => i,
                None => return fail(FsError::Corrupted("dst lacks id".into()), self, &locked),
            };
            if d_ino == src_ino {
                self.abort_txn(txn, &locked);
                return Ok(());
            }
            match (src_type, d.ftype) {
                (FileType::Dir, Some(FileType::Dir)) => {
                    let dattr = match self.get_row(&Key::attr(d_ino)) {
                        Ok(Some(r)) => r,
                        Ok(None) => {
                            return fail(
                                FsError::Corrupted("dst dir lacks attr".into()),
                                self,
                                &locked,
                            )
                        }
                        Err(e) => return fail(e, self, &locked),
                    };
                    if dattr.children.unwrap_or(0) > 0 {
                        return fail(FsError::NotEmpty, self, &locked);
                    }
                    replaced = Some((d_ino, FileType::Dir));
                }
                (FileType::Dir, _) => return fail(FsError::NotDir, self, &locked),
                (_, Some(FileType::Dir)) => return fail(FsError::IsDir, self, &locked),
                (_, t) => replaced = Some((d_ino, t.unwrap_or(FileType::File))),
            }
        }

        // Compose writes.
        let mut writes: Vec<(Key, Option<Record>)> = Vec::new();
        let mut moved = src_row.clone();
        moved.parent = Some(dst_parent);
        writes.push((dst_ekey.clone(), Some(moved)));
        writes.push((src_ekey.clone(), None));
        let same_parent = src_parent == dst_parent;
        if same_parent {
            let mut prow = src_prow;
            if replaced.is_some() {
                prow.apply(&FieldAssign::Delta {
                    field: NumField::Children,
                    delta: -1,
                });
            }
            prow.apply(&FieldAssign::Set {
                field: LwwField::Mtime,
                value: now,
                ts,
            });
            writes.push((src_pkey.clone(), Some(prow)));
        } else {
            let mut sp = src_prow;
            sp.apply(&FieldAssign::Delta {
                field: NumField::Children,
                delta: -1,
            });
            if src_type == FileType::Dir {
                sp.apply(&FieldAssign::Delta {
                    field: NumField::Links,
                    delta: -1,
                });
            }
            sp.apply(&FieldAssign::Set {
                field: LwwField::Mtime,
                value: now,
                ts,
            });
            writes.push((src_pkey.clone(), Some(sp)));
            let mut dp = dst_prow;
            if replaced.is_none() {
                dp.apply(&FieldAssign::Delta {
                    field: NumField::Children,
                    delta: 1,
                });
            }
            if src_type == FileType::Dir {
                dp.apply(&FieldAssign::Delta {
                    field: NumField::Links,
                    delta: 1,
                });
            }
            dp.apply(&FieldAssign::Set {
                field: LwwField::Mtime,
                value: now,
                ts,
            });
            writes.push((dst_pkey.clone(), Some(dp)));
        }
        // Move schema-specific attribute rows.
        match self.config.schema {
            AttrSchema::SplitWithParent if src_type != FileType::Dir => {
                let old_fk = self.fattr_key(src_parent, &src_name, src_ino);
                if let Ok(Some(fattr)) = self.get_row(&old_fk) {
                    writes.push((old_fk, None));
                    writes.push((self.fattr_key(dst_parent, &dst_name, src_ino), Some(fattr)));
                }
            }
            _ => {}
        }
        if src_type == FileType::Dir && !same_parent {
            if let Ok(Some(mut attr)) = self.get_row(&Key::attr(src_ino)) {
                attr.id = Some(dst_parent);
                writes.push((Key::attr(src_ino), Some(attr)));
            }
        }
        if let Some((d_ino, d_type)) = replaced {
            match self.config.schema {
                AttrSchema::SplitWithParent if d_type != FileType::Dir => {
                    // The destination fattr row is overwritten by the moved
                    // one only if names collide; delete explicitly.
                    let k = self.fattr_key(dst_parent, &dst_name, d_ino);
                    if !writes.iter().any(|(wk, r)| wk == &k && r.is_some()) {
                        writes.push((k, None));
                    }
                }
                AttrSchema::SplitByIno if d_type != FileType::Dir => {
                    writes.push((Key::attr(d_ino), None));
                }
                _ => {}
            }
            if d_type == FileType::Dir {
                writes.push((Key::attr(d_ino), None));
            }
        }

        self.commit_txn(txn, writes, &locked)?;
        self.cache_forget(src_parent, &src_name);
        self.cache_forget(dst_parent, &dst_name);
        if let Some((d_ino, d_type)) = replaced {
            if d_type != FileType::Dir && self.config.schema == AttrSchema::SplitFileStore {
                let _ = self.fs.delete_file(d_ino);
            }
        }
        Ok(())
    }

    /// Seeds the root directory rows for this engine's schema.
    pub fn bootstrap_root(&self) -> FsResult<()> {
        let mut root = Record::dir_attr_record(0, Timestamp(0));
        root.id = Some(ROOT_INODE);
        self.put_row(Key::attr(ROOT_INODE), root)
    }
}

/// Builds an attribute-bearing record (inline rows, fattr rows).
fn full_record(
    ino: InodeId,
    ftype: FileType,
    now: u64,
    ts: Timestamp,
    parent: Option<InodeId>,
) -> Record {
    use cfs_types::record::Lww;
    Record {
        id: Some(ino),
        ftype: Some(ftype),
        links: Some(if ftype == FileType::Dir { 2 } else { 1 }),
        children: Some(0),
        size: Some(0),
        mtime: Some(Lww::new(now, ts)),
        ctime: Some(Lww::new(now, ts)),
        atime: Some(Lww::new(now, ts)),
        mode: Some(Lww::new(
            u64::from(if ftype == FileType::Dir {
                cfs_types::attr::DEFAULT_DIR_MODE
            } else {
                cfs_types::attr::DEFAULT_FILE_MODE
            }),
            ts,
        )),
        uid: Some(Lww::new(0, ts)),
        gid: Some(Lww::new(0, ts)),
        symlink_target: None,
        parent,
        inode_limit: None,
        byte_limit: None,
    }
}

/// Materializes an attribute-bearing record into an [`Attr`].
fn record_to_attr(rec: &Record, ino: InodeId) -> FsResult<Attr> {
    rec.to_dir_attr(ino)
}

/// Blocking inode-level coordinator locks (subtree locks / rename locks).
pub struct InodeLocks {
    held: Mutex<std::collections::HashSet<InodeId>>,
    released: Condvar,
}

impl Default for InodeLocks {
    fn default() -> Self {
        InodeLocks {
            held: Mutex::new(std::collections::HashSet::new()),
            released: Condvar::new(),
        }
    }
}

impl InodeLocks {
    /// Acquires all `inos` atomically, blocking until available.
    pub fn lock(&self, mut inos: Vec<InodeId>) -> InodeLockGuard<'_> {
        inos.sort_unstable();
        inos.dedup();
        let mut held = self.held.lock();
        loop {
            if inos.iter().all(|i| !held.contains(i)) {
                for i in &inos {
                    held.insert(*i);
                }
                return InodeLockGuard { locks: self, inos };
            }
            self.released.wait(&mut held);
        }
    }
}

/// RAII guard of [`InodeLocks::lock`].
pub struct InodeLockGuard<'a> {
    locks: &'a InodeLocks,
    inos: Vec<InodeId>,
}

impl Drop for InodeLockGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.locks.held.lock();
        for i in &self.inos {
            held.remove(i);
        }
        drop(held);
        self.locks.released.notify_all();
    }
}

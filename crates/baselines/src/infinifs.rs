//! InfiniFS-like deployment preset.

use cfs_core::CfsConfig;
use cfs_types::FsResult;

use crate::variants::{BaselineCluster, Variant};

/// An InfiniFS-like cluster: MDS proxy layer, parent-children grouped
/// partitioning (single-shard create/unlink, 2PC mkdir/rmdir), file
/// attributes grouped with the parent directory's shard, coordinator-routed
/// renames with no fast path.
pub struct InfiniFsCluster;

impl InfiniFsCluster {
    /// Boots the deployment.
    pub fn start(config: CfsConfig, proxies: usize) -> FsResult<BaselineCluster> {
        BaselineCluster::start(Variant::InfiniFs, config, proxies)
    }
}

//! A lock-free bounded MPMC ring buffer (Vyukov-style), used as the span
//! sink: hot paths push completed spans with two atomic operations and no
//! locks; the exporter drains from the other end.
//!
//! When the ring is full the *oldest* element is evicted to make room (a
//! tracing sink wants the most recent spans — the ones describing the
//! operation that just failed), and an eviction counter records the loss so
//! truncation is never silent.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Slot<T> {
    /// Vyukov sequence: `index` when empty and claimable by the producer of
    /// that index, `index + 1` when filled and claimable by its consumer.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A fixed-capacity lock-free queue. Capacity is rounded up to a power of
/// two; `push` never blocks and evicts the oldest element when full.
pub struct RingBuffer<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
    evicted: AtomicU64,
}

unsafe impl<T: Send> Send for RingBuffer<T> {}
unsafe impl<T: Send> Sync for RingBuffer<T> {}

impl<T> RingBuffer<T> {
    /// Creates a ring holding at least `capacity` elements.
    pub fn new(capacity: usize) -> RingBuffer<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        RingBuffer {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Number of elements dropped to make room since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - pos as isize {
                0 => {
                    match self.head.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.val.get()).write(value) };
                            slot.seq.store(pos + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return Err(value), // full
                _ => pos = self.head.load(Ordering::Relaxed),
            }
        }
    }

    /// Pushes `value`, evicting the oldest element if the ring is full.
    pub fn push(&self, value: T) {
        let mut value = value;
        loop {
            match self.try_push(value) {
                Ok(()) => return,
                Err(v) => {
                    value = v;
                    if self.pop().is_some() {
                        self.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                    // Retry; another producer may have raced us into the slot
                    // we just freed, in which case the next lap evicts again.
                }
            }
        }
    }

    /// Pops the oldest element, or `None` when empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq as isize - (pos + 1) as isize {
                0 => {
                    match self.tail.compare_exchange_weak(
                        pos,
                        pos + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.val.get()).assume_init_read() };
                            slot.seq.store(pos + self.mask + 1, Ordering::Release);
                            return Some(value);
                        }
                        Err(p) => pos = p,
                    }
                }
                d if d < 0 => return None, // empty
                _ => pos = self.tail.load(Ordering::Relaxed),
            }
        }
    }

    /// Drains every currently-queued element, oldest first.
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.pop() {
            out.push(v);
        }
        out
    }
}

impl<T> Drop for RingBuffer<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let r = RingBuffer::new(8);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.drain(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.evicted(), 0);
    }

    #[test]
    fn full_ring_evicts_oldest() {
        let r = RingBuffer::new(4); // rounds to 4
        for i in 0..10 {
            r.push(i);
        }
        let got = r.drain();
        assert_eq!(got.len(), 4);
        assert_eq!(got, vec![6, 7, 8, 9], "newest survive, oldest evicted");
        assert_eq!(r.evicted(), 6);
    }

    #[test]
    fn concurrent_producers_lose_nothing_under_capacity() {
        let r = Arc::new(RingBuffer::new(4096));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    r.push(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut got = r.drain();
        got.sort_unstable();
        assert_eq!(got.len(), 4000);
        got.dedup();
        assert_eq!(got.len(), 4000, "no element duplicated or lost");
    }

    #[test]
    fn concurrent_push_with_eviction_stays_consistent() {
        // Hammer a tiny ring from many threads: no crash, no duplicate, and
        // push count == drained + evicted.
        let r = Arc::new(RingBuffer::<u64>::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    r.push(t * 10_000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let got = r.drain();
        assert!(got.len() <= 8);
        assert_eq!(4000, got.len() as u64 + r.evicted());
    }
}

//! Metrics: per-node counters, gauges, and log2-bucket histograms.
//!
//! Recording is lock-free — a counter bump or histogram observation is one
//! or three relaxed atomic adds; the registry's lock is touched only when a
//! handle is first created (callers cache handles) and when snapshotting.
//!
//! Handles are `Arc`s into a [`Registry`]. Process-global per-node
//! registries live in a hub keyed by rpc node id — [`node`] fetches one,
//! [`local`] resolves the node from the tracing layer's thread-local
//! attribution (see `trace::node_scope`), so deep layers like the lock
//! manager record against the right node without threading ids everywhere.
//!
//! Histograms are monotonic; consumers that need interval measurements
//! (benches comparing systems booted in one process) take before/after
//! [`HistogramSnapshot`]s and [`HistogramSnapshot::delta`] them.

use crate::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. a queue length).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucket histogram: values land in bucket `⌈log2(v)⌉ + 1` (zero in
/// bucket 0), covering the full `u64` range in 65 buckets. Recording is
/// three relaxed atomic adds plus a max update.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Bucket index: 0 for zero, otherwise the bit-length of `v`, so bucket
/// `i >= 1` covers `[2^(i-1), 2^i - 1]`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Representative value for a bucket (midpoint of its range).
fn bucket_mid(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => (1u64 << (i - 1)) + (1u64 << (i - 2)),
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], supporting interval deltas,
/// merging across nodes, and quantile estimation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Observations accumulated since `earlier` (histograms are monotonic,
    /// so a bucket-wise saturating subtraction is exact).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max, // max is not invertible; keep the lifetime max
        }
    }

    /// Merges `other` in (e.g. the same histogram across shard nodes).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for i in 0..BUCKETS {
            self.buckets[i] += other.buckets[i];
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Estimated `q`-quantile (0.0..=1.0) using bucket midpoints; 0 when
    /// empty. Log2 buckets bound the relative error by ~±50%.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_mid(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of observed values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Serializes to JSON: count/sum/max/mean/p50/p99 plus the non-empty
    /// buckets as `[bucket_midpoint, count]` pairs.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count)),
            ("sum", Json::Int(self.sum)),
            ("max", Json::Int(self.max)),
            ("mean", Json::Num(self.mean())),
            ("p50", Json::Int(self.quantile(0.50))),
            ("p99", Json::Int(self.quantile(0.99))),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| Json::Arr(vec![Json::Int(bucket_mid(i)), Json::Int(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of instruments. Handles are created once and cached
/// by callers; recording through a handle never touches the registry lock.
#[derive(Default)]
pub struct Registry {
    by_name: RwLock<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Instrument::Counter(c)) = self.by_name.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.by_name.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Instrument::Gauge(g)) = self.by_name.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.by_name.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Instrument::Histogram(h)) = self.by_name.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.by_name.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Snapshot of a histogram by name, or an empty snapshot if absent.
    /// Useful for before/after interval deltas without creating metrics
    /// that the system under test may never record.
    pub fn histogram_snapshot(&self, name: &str) -> HistogramSnapshot {
        match self.by_name.read().unwrap().get(name) {
            Some(Instrument::Histogram(h)) => h.snapshot(),
            _ => HistogramSnapshot::default(),
        }
    }

    /// Serializes every instrument: counters/gauges as integers,
    /// histograms via [`HistogramSnapshot::to_json`].
    pub fn snapshot(&self) -> Json {
        let map = self.by_name.read().unwrap();
        Json::Obj(
            map.iter()
                .map(|(name, inst)| {
                    let v = match inst {
                        Instrument::Counter(c) => Json::Int(c.get()),
                        Instrument::Gauge(g) => Json::Num(g.get() as f64),
                        Instrument::Histogram(h) => h.snapshot().to_json(),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Per-node hub
// ---------------------------------------------------------------------------

fn hub() -> &'static Mutex<BTreeMap<u64, Arc<Registry>>> {
    static HUB: OnceLock<Mutex<BTreeMap<u64, Arc<Registry>>>> = OnceLock::new();
    HUB.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The process-global registry for rpc node `id`, created on first use.
pub fn node(id: u64) -> Arc<Registry> {
    Arc::clone(
        hub()
            .lock()
            .unwrap()
            .entry(id)
            .or_insert_with(|| Arc::new(Registry::new())),
    )
}

/// The registry for the node currently attributed to this thread (see
/// `trace::node_scope`); node 0 collects unattributed records.
pub fn local() -> Arc<Registry> {
    node(crate::trace::current_node())
}

/// Snapshot of a named histogram merged across every node in the hub.
/// Benches use before/after merged snapshots and delta them.
pub fn merged_histogram(name: &str) -> HistogramSnapshot {
    let regs: Vec<Arc<Registry>> = hub().lock().unwrap().values().cloned().collect();
    let mut out = HistogramSnapshot::default();
    for r in regs {
        out.merge(&r.histogram_snapshot(name));
    }
    out
}

/// Serializes every node's registry: `{ "<node-id>": { ...snapshot } }`.
pub fn snapshot_all() -> Json {
    let regs: Vec<(u64, Arc<Registry>)> = hub()
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (*k, Arc::clone(v)))
        .collect();
    Json::Obj(
        regs.iter()
            .map(|(id, r)| (id.to_string(), r.snapshot()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("ops").get(), 5, "same handle by name");
        let g = r.gauge("depth");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let h = Histogram::default();
        for v in [100u64, 100, 100, 100, 100, 100, 100, 100, 100, 100_000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 100_000);
        let p50 = s.quantile(0.50);
        assert!((64..=128).contains(&p50), "p50 {p50} should bracket 100");
        let p99 = s.quantile(0.99);
        assert!(p99 > 10_000, "p99 {p99} should land in the outlier bucket");
        assert!((s.mean() - 10090.0).abs() < 1.0);
    }

    #[test]
    fn snapshot_delta_and_merge() {
        let h = Histogram::default();
        h.observe(10);
        let before = h.snapshot();
        h.observe(1000);
        h.observe(1000);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 2000);

        let mut m = HistogramSnapshot::default();
        m.merge(&d);
        m.merge(&before);
        assert_eq!(m.count, 3);
        assert_eq!(m.sum, 2010);
    }

    #[test]
    fn registry_snapshot_serializes_everything() {
        let r = Registry::new();
        r.counter("c").add(3);
        r.gauge("g").set(-2);
        r.histogram("h").observe(5);
        let text = r.snapshot().to_text();
        assert!(text.contains("\"c\": 3"));
        assert!(text.contains("\"g\": -2"));
        assert!(text.contains("\"count\": 1"));
        assert!(text.contains("\"p99\""));
    }

    #[test]
    fn hub_routes_by_thread_node_scope() {
        let _scope = crate::trace::node_scope(777_001);
        local().counter("routed").inc();
        assert_eq!(node(777_001).counter("routed").get(), 1);
        let merged = {
            node(777_002).histogram("shared_h").observe(8);
            node(777_003).histogram("shared_h").observe(16);
            merged_histogram("shared_h")
        };
        assert!(merged.count >= 2);
    }

    #[test]
    fn missing_histogram_snapshot_is_empty() {
        let r = Registry::new();
        let s = r.histogram_snapshot("nope");
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), 0);
    }
}

//! Distributed tracing: a [`TraceCtx`] carried through the rpc envelope on
//! every call, per-process lock-free span sinks, and an exporter that
//! stitches cross-node spans into per-operation trees.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Tracing is opt-in via [`enable`]; when disabled
//!    every instrumentation point is a single relaxed atomic load.
//! 2. **Deterministic.** The simulator replays schedules from a seed; trace
//!    and span ids come from process-global atomic counters, never from
//!    randomness or wall-clock entropy, so enabling tracing cannot perturb a
//!    seeded run's id sequences.
//! 3. **No heap on the hot path.** Finished spans go into a bounded
//!    lock-free [`RingBuffer`] (overwriting the oldest on overflow); names
//!    are `&'static str`.
//!
//! Context flows two ways. Within a node, spans nest through a thread-local
//! (`Network::call` runs the handler on the caller's thread, so the
//! thread-local survives the hop naturally). Across threads — oneway
//! messages are delivered by worker threads — the context rides the wire: a
//! [`wire_wrap`]ed payload carries `(trace_id, span_id, parent)` ahead of
//! the application bytes and the rpc layer restores the thread-local before
//! dispatching the handler.

use crate::ring::RingBuffer;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The identity of an in-flight operation: which trace it belongs to, which
/// span is current, and that span's parent. This is what crosses the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the whole operation tree (e.g. one `create` call).
    pub trace_id: u64,
    /// The currently-open span.
    pub span_id: u64,
    /// The span that opened `span_id`; 0 for roots.
    pub parent: u64,
}

/// One finished span as recorded in the sink.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id; 0 for trace roots.
    pub parent: u64,
    /// Node the span executed on (rpc-layer node id; 0 = unattributed).
    pub node: u64,
    /// Static name, e.g. `"fs.create"` or `"raft.propose"`.
    pub name: &'static str,
    /// Start offset in nanoseconds from the process trace epoch.
    pub start_ns: u64,
    /// End offset in nanoseconds from the process trace epoch.
    pub end_ns: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
    static NODE: Cell<u64> = const { Cell::new(0) };
    static LAST_ROOT: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn sink() -> &'static RingBuffer<SpanRecord> {
    static SINK: OnceLock<RingBuffer<SpanRecord>> = OnceLock::new();
    SINK.get_or_init(|| RingBuffer::new(65_536))
}

/// Turns span recording on process-wide.
pub fn enable() {
    epoch(); // pin the epoch before the first span
    ENABLED.store(true, Ordering::Release);
}

/// Turns span recording off. Already-recorded spans stay drainable.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans are currently being recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Removes and returns every recorded span, oldest first.
pub fn drain() -> Vec<SpanRecord> {
    sink().drain()
}

/// Spans evicted from the sink because it was full.
pub fn evicted() -> u64 {
    sink().evicted()
}

/// Puts a span back into the sink. The sink is process-global and shared,
/// so a consumer interested in one trace drains everything, keeps its own
/// spans, and requeues the rest for other consumers.
pub fn requeue(span: SpanRecord) {
    sink().push(span);
}

/// The calling thread's current trace context, if any.
pub fn current() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Trace id of the most recent root span opened on this thread (0 if none).
/// Lets a harness that calls an instrumented API correlate the operation it
/// just ran with the trace the instrumentation opened internally.
pub fn last_root_trace_id() -> u64 {
    LAST_ROOT.with(|t| t.get())
}

/// The node id attributed to work on the calling thread (0 = none).
pub fn current_node() -> u64 {
    NODE.with(|n| n.get())
}

/// Attributes the calling thread's spans and metrics to `node` until the
/// guard drops; the previous attribution is restored.
pub fn node_scope(node: u64) -> NodeScope {
    let prev = NODE.with(|n| n.replace(node));
    NodeScope { prev }
}

/// Restores the previous node attribution on drop. See [`node_scope`].
pub struct NodeScope {
    prev: u64,
}

impl Drop for NodeScope {
    fn drop(&mut self) {
        NODE.with(|n| n.set(self.prev));
    }
}

/// Installs `ctx` as the calling thread's trace context until the guard
/// drops (used by the rpc layer when a context arrives over the wire).
pub fn ctx_scope(ctx: Option<TraceCtx>) -> CtxScope {
    let prev = CURRENT.with(|c| c.replace(ctx));
    CtxScope { prev }
}

/// Restores the previous trace context on drop. See [`ctx_scope`].
pub struct CtxScope {
    prev: Option<TraceCtx>,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// An open span; records itself into the sink when dropped.
pub struct SpanGuard {
    ctx: Option<TraceCtx>,
    prev: Option<TraceCtx>,
    name: &'static str,
    start_ns: u64,
    node: u64,
}

impl SpanGuard {
    /// The context of this span while open (None when tracing is disabled).
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.ctx
    }

    /// The trace id of this span, or 0 when tracing is disabled.
    pub fn trace_id(&self) -> u64 {
        self.ctx.map_or(0, |c| c.trace_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx {
            CURRENT.with(|c| c.set(self.prev));
            sink().push(SpanRecord {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent: ctx.parent,
                node: self.node,
                name: self.name,
                start_ns: self.start_ns,
                end_ns: now_ns(),
            });
        }
    }
}

fn open(name: &'static str, force_root: bool) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            ctx: None,
            prev: None,
            name,
            start_ns: 0,
            node: 0,
        };
    }
    let prev = current();
    let ctx = match prev {
        Some(p) if !force_root => TraceCtx {
            trace_id: p.trace_id,
            span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
            parent: p.span_id,
        },
        _ => {
            let trace_id = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
            LAST_ROOT.with(|t| t.set(trace_id));
            TraceCtx {
                trace_id,
                span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
                parent: 0,
            }
        }
    };
    CURRENT.with(|c| c.set(Some(ctx)));
    SpanGuard {
        ctx: Some(ctx),
        prev,
        name,
        start_ns: now_ns(),
        node: current_node(),
    }
}

/// Opens a span as a child of the thread's current context (or as a new
/// trace root if there is none). Closes, and records, on drop.
pub fn span(name: &'static str) -> SpanGuard {
    open(name, false)
}

/// Opens a span that starts a fresh trace regardless of the current context.
pub fn root_span(name: &'static str) -> SpanGuard {
    open(name, true)
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// First byte of a trace-wrapped payload. Chosen to collide with no mux
/// channel byte (`CH_RAFT`/`CH_APP`/`CH_TXN` are 0/1/2).
pub const WIRE_MAGIC: u8 = 0xE7;

const WIRE_HDR: usize = 1 + 3 * 8;

/// Prepends `ctx` to `payload`: `[0xE7, trace_id, span_id, parent]` as
/// little-endian u64s, then the original bytes.
pub fn wire_wrap(ctx: TraceCtx, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(WIRE_HDR + payload.len());
    out.push(WIRE_MAGIC);
    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
    out.extend_from_slice(&ctx.span_id.to_le_bytes());
    out.extend_from_slice(&ctx.parent.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a [`wire_wrap`]ed payload back into its context and inner bytes.
/// Returns `None` for payloads that don't carry the envelope.
pub fn wire_unwrap(payload: &[u8]) -> Option<(TraceCtx, &[u8])> {
    if payload.len() < WIRE_HDR || payload[0] != WIRE_MAGIC {
        return None;
    }
    let u = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().unwrap());
    Some((
        TraceCtx {
            trace_id: u(1),
            span_id: u(9),
            parent: u(17),
        },
        &payload[WIRE_HDR..],
    ))
}

// ---------------------------------------------------------------------------
// Exporter
// ---------------------------------------------------------------------------

/// A span plus its children, as stitched by [`build_trees`].
#[derive(Debug)]
pub struct SpanTree {
    /// The span at this node of the tree.
    pub span: SpanRecord,
    /// Child spans ordered by start time.
    pub children: Vec<SpanTree>,
}

impl SpanTree {
    /// Longest root-to-leaf path, counting this node (a lone root = 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanTree::depth).max().unwrap_or(0)
    }

    /// Every node id appearing in the tree, preorder.
    pub fn nodes(&self) -> Vec<u64> {
        let mut out = vec![self.span.node];
        for c in &self.children {
            out.extend(c.nodes());
        }
        out
    }

    /// Whether any span in the tree has the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.span.name == name || self.children.iter().any(|c| c.contains(name))
    }
}

/// Checks parent-link consistency: every span with a nonzero parent must
/// have that parent present *in the same trace*. Returns the offending
/// spans (empty = valid).
pub fn validate_spans(spans: &[SpanRecord]) -> Vec<&SpanRecord> {
    use std::collections::HashSet;
    let ids: HashSet<(u64, u64)> = spans.iter().map(|s| (s.trace_id, s.span_id)).collect();
    spans
        .iter()
        .filter(|s| s.parent != 0 && !ids.contains(&(s.trace_id, s.parent)))
        .collect()
}

/// Stitches spans of one trace into trees (one per root; a consistent trace
/// has exactly one). Spans referencing missing parents become extra roots
/// rather than being dropped.
pub fn build_trees(spans: &[SpanRecord], trace_id: u64) -> Vec<SpanTree> {
    let mut mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    mine.sort_by_key(|s| (s.start_ns, s.span_id));
    let present: std::collections::HashSet<u64> = mine.iter().map(|s| s.span_id).collect();

    fn attach(span: &SpanRecord, rest: &[&SpanRecord]) -> SpanTree {
        let children = rest
            .iter()
            .filter(|s| s.parent == span.span_id)
            .map(|s| attach(s, rest))
            .collect();
        SpanTree {
            span: span.clone(),
            children,
        }
    }

    mine.iter()
        .filter(|s| s.parent == 0 || !present.contains(&s.parent))
        .map(|s| attach(s, &mine))
        .collect()
}

/// Renders a trace as an indented, hop-annotated timeline:
///
/// ```text
/// fs.create  node=1000000  +0µs  1840µs
///   rpc.call  node=100  +12µs  903µs
///     raft.propose  node=100  +40µs  611µs
/// ```
pub fn render_trace(spans: &[SpanRecord], trace_id: u64) -> String {
    fn line(out: &mut String, t: &SpanTree, depth: usize, t0: u64) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{}  node={}  +{}µs  {}µs\n",
            t.span.name,
            t.span.node,
            (t.span.start_ns.saturating_sub(t0)) / 1_000,
            (t.span.end_ns.saturating_sub(t.span.start_ns)) / 1_000,
        ));
        for c in &t.children {
            line(out, c, depth + 1, t0);
        }
    }
    let trees = build_trees(spans, trace_id);
    let t0 = trees.iter().map(|t| t.span.start_ns).min().unwrap_or(0);
    let mut out = String::new();
    for t in &trees {
        line(&mut out, t, 0, t0);
    }
    out
}

/// Serializes spans to JSON: an array of objects with `trace_id`,
/// `span_id`, `parent`, `node`, `name`, `start_ns`, `end_ns`.
pub fn spans_to_json(spans: &[SpanRecord]) -> crate::Json {
    crate::Json::Arr(
        spans
            .iter()
            .map(|s| {
                crate::Json::obj(vec![
                    ("trace_id", crate::Json::Int(s.trace_id)),
                    ("span_id", crate::Json::Int(s.span_id)),
                    ("parent", crate::Json::Int(s.parent)),
                    ("node", crate::Json::Int(s.node)),
                    ("name", crate::Json::Str(s.name.to_string())),
                    ("start_ns", crate::Json::Int(s.start_ns)),
                    ("end_ns", crate::Json::Int(s.end_ns)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global sink; each drains only spans from
    // trace ids it created itself so parallel tests don't interfere.
    fn spans_of(all: &[SpanRecord], trace_id: u64) -> Vec<SpanRecord> {
        all.iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect()
    }

    #[test]
    fn disabled_spans_record_nothing() {
        disable();
        let g = span("noop");
        assert_eq!(g.trace_id(), 0);
        assert!(g.ctx().is_none());
    }

    #[test]
    fn nesting_builds_parent_links() {
        enable();
        let tid;
        {
            let root = root_span("op");
            tid = root.trace_id();
            let _child = span("inner");
        }
        let all = drain();
        let mine = spans_of(&all, tid);
        // re-push spans from other concurrent tests
        for s in all {
            if s.trace_id != tid {
                requeue(s);
            }
        }
        assert_eq!(mine.len(), 2);
        assert!(validate_spans(&mine).is_empty());
        let trees = build_trees(&mine, tid);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].span.name, "op");
        assert_eq!(trees[0].children.len(), 1);
        assert_eq!(trees[0].children[0].span.name, "inner");
        assert_eq!(trees[0].depth(), 2);
        assert!(trees[0].contains("inner"));
    }

    #[test]
    fn wire_round_trips_and_rejects_unwrapped() {
        let ctx = TraceCtx {
            trace_id: 7,
            span_id: 9,
            parent: 3,
        };
        let wrapped = wire_wrap(ctx, b"payload");
        let (got, inner) = wire_unwrap(&wrapped).unwrap();
        assert_eq!(got, ctx);
        assert_eq!(inner, b"payload");
        assert!(wire_unwrap(b"payload").is_none());
        assert!(wire_unwrap(&[0, 1, 2]).is_none());
        assert!(wire_unwrap(&[]).is_none());
    }

    #[test]
    fn ctx_crosses_threads_via_wire() {
        enable();
        let root = root_span("sender");
        let ctx = root.ctx().unwrap();
        let wrapped = wire_wrap(ctx, b"m");
        let tid = ctx.trace_id;
        let handle = std::thread::spawn(move || {
            let (ctx, inner) = wire_unwrap(&wrapped).unwrap();
            assert_eq!(inner, b"m");
            let _cs = ctx_scope(Some(ctx));
            let _ns = node_scope(42);
            let _child = span("receiver");
        });
        handle.join().unwrap();
        drop(root);
        let all = drain();
        let mine = spans_of(&all, tid);
        for s in all {
            if s.trace_id != tid {
                requeue(s);
            }
        }
        assert!(validate_spans(&mine).is_empty());
        let recv = mine.iter().find(|s| s.name == "receiver").unwrap();
        assert_eq!(recv.node, 42);
        assert_eq!(recv.parent, ctx.span_id);
    }

    #[test]
    fn orphan_parent_is_reported() {
        let spans = vec![SpanRecord {
            trace_id: 1,
            span_id: 2,
            parent: 99,
            node: 0,
            name: "lost",
            start_ns: 0,
            end_ns: 1,
        }];
        assert_eq!(validate_spans(&spans).len(), 1);
    }

    #[test]
    fn render_produces_indented_lines() {
        let spans = vec![
            SpanRecord {
                trace_id: 5,
                span_id: 1,
                parent: 0,
                node: 1_000_000,
                name: "fs.create",
                start_ns: 1_000,
                end_ns: 90_000,
            },
            SpanRecord {
                trace_id: 5,
                span_id: 2,
                parent: 1,
                node: 100,
                name: "rpc.call",
                start_ns: 10_000,
                end_ns: 60_000,
            },
        ];
        let text = render_trace(&spans, 5);
        assert!(text.starts_with("fs.create"));
        assert!(text.contains("\n  rpc.call"));
        assert!(text.contains("node=100"));
    }
}

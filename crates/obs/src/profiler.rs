//! Critical-section profiler: drop-guard stopwatches feeding duration
//! histograms.
//!
//! The instrumented sites are the ones the paper's argument hinges on —
//! lock wait/hold in the lock manager, Raft propose→apply, 2PC phase
//! durations, kvstore flush/compaction stalls. Each site creates a
//! [`Stopwatch`] over a cached histogram handle; the elapsed nanoseconds
//! are recorded when the guard drops (or at an explicit [`Stopwatch::stop`]).

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Times a scope and records the elapsed nanoseconds into a histogram when
/// dropped. `disarm` cancels recording (e.g. an aborted txn phase).
pub struct Stopwatch {
    start: Instant,
    sink: Option<Arc<Histogram>>,
}

impl Stopwatch {
    /// Starts timing; records into `sink` on drop.
    pub fn start(sink: Arc<Histogram>) -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
            sink: Some(sink),
        }
    }

    /// Elapsed nanoseconds so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Stops now and records, returning the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let ns = self.elapsed_ns();
        if let Some(sink) = self.sink.take() {
            sink.observe(ns);
        }
        ns
    }

    /// Cancels recording; the scope is not observed.
    pub fn disarm(mut self) {
        self.sink = None;
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.observe(self.start.elapsed().as_nanos() as u64);
        }
    }
}

/// Records `duration` (in ns, from an `Instant`-measured span the caller
/// already has) into the named histogram of the thread's local registry.
pub fn record_local_ns(name: &str, ns: u64) {
    crate::metrics::local().histogram(name).observe(ns);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_records_on_drop() {
        let h = Arc::new(Histogram::default());
        {
            let _sw = Stopwatch::start(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stop_returns_elapsed_and_records_once() {
        let h = Arc::new(Histogram::default());
        let sw = Stopwatch::start(Arc::clone(&h));
        let ns = sw.stop();
        assert_eq!(h.count(), 1);
        assert_eq!(h.snapshot().sum, ns);
    }

    #[test]
    fn disarm_skips_recording() {
        let h = Arc::new(Histogram::default());
        let sw = Stopwatch::start(Arc::clone(&h));
        sw.disarm();
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn record_local_lands_in_thread_node() {
        let _scope = crate::trace::node_scope(777_100);
        record_local_ns("prof_test_ns", 123);
        let h = crate::metrics::node(777_100).histogram("prof_test_ns");
        assert_eq!(h.count(), 1);
    }
}

//! A hand-rolled JSON value and pretty-printer.
//!
//! The workspace carries no serde; bench results, metrics snapshots, and
//! span dumps are small and flat, so a minimal encoder keeps the dependency
//! surface unchanged. This is the single emitter every machine-readable
//! artifact (`BENCH_*.json`, metrics snapshots, span dumps) goes through —
//! it moved here from `cfs-bench` so non-bench crates can use it too.

/// A hand-rolled JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (u64 counters).
    Int(u64),
    /// Floating point; non-finite values encode as `null`.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).render(out, indent + 1);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Renders the value as pretty-printed JSON text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Json::obj(vec![
            ("a", Json::Int(3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::Str("x\"y\n".into())),
            ("d", Json::Num(f64::NAN)),
        ]);
        let text = v.to_text();
        assert!(text.contains("\"a\": 3"));
        assert!(text.contains("true"));
        assert!(text.contains("\\\"y\\n"));
        assert!(text.contains("\"d\": null"), "NaN encodes as null");
    }

    #[test]
    fn empty_containers_are_compact() {
        assert_eq!(Json::Arr(vec![]).to_text(), "[]\n");
        assert_eq!(Json::Obj(vec![]).to_text(), "{}\n");
    }
}

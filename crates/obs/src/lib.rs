//! Observability for the CFS reproduction: distributed tracing, a metrics
//! registry, and a critical-section profiler.
//!
//! The paper's central claim — CFS scales by *pruning the scope of critical
//! sections* — is an observability claim as much as a throughput claim: it
//! says locks are held for microseconds where lock-coupling baselines hold
//! them across network round trips. This crate provides the instruments that
//! make the claim directly measurable:
//!
//! * [`trace`] — a [`trace::TraceCtx`] propagated through the `cfs-rpc`
//!   envelope on every call, per-process lock-free ring-buffer span sinks,
//!   and an exporter that stitches cross-node spans into per-operation trees
//!   (client → TafDB shard → Raft commit → FileStore).
//! * [`metrics`] — per-node counters, gauges, and log2-bucket histograms
//!   cheap enough for hot paths (atomic adds, no locks on record), with
//!   snapshots that serialize to the hand-rolled [`Json`] emitter.
//! * [`profiler`] — drop-guard stopwatches that feed critical-section
//!   durations (lock wait/hold, Raft propose→apply, 2PC phases, kvstore
//!   flush/compaction stalls) into the registry.
//!
//! The crate carries no heavy dependencies: `std` atomics and the workspace's
//! own `cfs-types` only, so every layer of the system can afford to link it.

pub mod json;
pub mod metrics;
pub mod profiler;
pub mod ring;
pub mod trace;

pub use json::Json;
pub use metrics::Registry;
pub use profiler::Stopwatch;
pub use trace::TraceCtx;

//! Logical change-data-capture events derived from component WALs.
//!
//! Paper §4.4: the garbage collector "watches the write ahead logs of TafDB
//! and FileStore to learn recent metadata mutations, similar to the widely
//! used change data capture service, and performs a pairing analysis of the
//! relevant metadata mutations between TafDB and FileStore to find
//! unmatched/orphaned records". Components publish these logical events into
//! a watchable [`cfs-wal`] log alongside their physical WAL.

use crate::codec::{Decode, DecodeError, Encode};
use crate::id::InodeId;

/// One logical metadata mutation observable by the garbage collector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CdcEvent {
    /// TafDB inserted an id record pointing at `ino` (create/mkdir/rename).
    TafInsertedId {
        /// The linked inode.
        ino: InodeId,
    },
    /// TafDB deleted an id record that pointed at `ino` (unlink/rmdir/rename).
    TafDeletedId {
        /// The unlinked inode.
        ino: InodeId,
    },
    /// TafDB created a directory attribute record for `ino`.
    TafPutDirAttr {
        /// The directory.
        ino: InodeId,
    },
    /// TafDB deleted the directory attribute record of `ino`.
    TafDeletedDirAttr {
        /// The directory.
        ino: InodeId,
    },
    /// FileStore wrote the attribute record of `ino`.
    AttrPut {
        /// The file.
        ino: InodeId,
    },
    /// FileStore deleted the attribute record of `ino`.
    AttrDeleted {
        /// The file.
        ino: InodeId,
    },
}

impl CdcEvent {
    /// The inode the event concerns.
    pub fn ino(&self) -> InodeId {
        match self {
            CdcEvent::TafInsertedId { ino }
            | CdcEvent::TafDeletedId { ino }
            | CdcEvent::TafPutDirAttr { ino }
            | CdcEvent::TafDeletedDirAttr { ino }
            | CdcEvent::AttrPut { ino }
            | CdcEvent::AttrDeleted { ino } => *ino,
        }
    }
}

impl Encode for CdcEvent {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (tag, ino) = match self {
            CdcEvent::TafInsertedId { ino } => (0u8, ino),
            CdcEvent::TafDeletedId { ino } => (1, ino),
            CdcEvent::TafPutDirAttr { ino } => (2, ino),
            CdcEvent::TafDeletedDirAttr { ino } => (3, ino),
            CdcEvent::AttrPut { ino } => (4, ino),
            CdcEvent::AttrDeleted { ino } => (5, ino),
        };
        buf.push(tag);
        ino.encode(buf);
    }
}

impl Decode for CdcEvent {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let tag = u8::decode(input)?;
        let ino = InodeId::decode(input)?;
        Ok(match tag {
            0 => CdcEvent::TafInsertedId { ino },
            1 => CdcEvent::TafDeletedId { ino },
            2 => CdcEvent::TafPutDirAttr { ino },
            3 => CdcEvent::TafDeletedDirAttr { ino },
            4 => CdcEvent::AttrPut { ino },
            5 => CdcEvent::AttrDeleted { ino },
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdc_event_round_trip() {
        let events = [
            CdcEvent::TafInsertedId { ino: InodeId(1) },
            CdcEvent::TafDeletedId { ino: InodeId(2) },
            CdcEvent::TafPutDirAttr { ino: InodeId(3) },
            CdcEvent::TafDeletedDirAttr { ino: InodeId(4) },
            CdcEvent::AttrPut { ino: InodeId(5) },
            CdcEvent::AttrDeleted { ino: InodeId(6) },
        ];
        for e in events {
            assert_eq!(CdcEvent::from_bytes(&e.to_bytes()).unwrap(), e);
            assert_eq!(e.ino().raw(), e.ino().raw());
        }
    }
}

//! Rows of TafDB's `inode_table` and the update/condition algebra the
//! single-shard atomic primitives operate on.
//!
//! Paper §4.1 organizes all namespace metadata (except file attributes) into
//! one table whose records carry "a list of optional fields, such as id, type,
//! children, links, size, time, etc, with the unused fields set to NULL".
//! [`Record`] mirrors that: id records populate `id`/`ftype`, directory
//! attribute records populate the counter and time fields.
//!
//! Paper §4.2 distinguishes two merge classes for concurrent updates:
//!
//! * **delta apply** — `links`, `children`, `size` are numeric and mutated by
//!   commutative increments/decrements, so concurrent deltas merge in any
//!   order ([`FieldAssign::Delta`]);
//! * **last-writer-wins** — `mtime`, `mode`, owner fields are overwritten, and
//!   the value carrying the largest timestamp issued by the TS group wins
//!   ([`FieldAssign::Set`]).

use crate::attr::{Attr, FileType};
use crate::codec::{Decode, DecodeError, Encode, EncodeListItem};
use crate::error::FsError;
use crate::id::InodeId;
use crate::key::Key;
use crate::time::Timestamp;

/// A value governed by last-writer-wins merging.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lww {
    /// Current value.
    pub val: u64,
    /// Timestamp of the write that produced `val`.
    pub ts: Timestamp,
}

impl Lww {
    /// Creates an LWW cell holding `val` written at `ts`.
    pub fn new(val: u64, ts: Timestamp) -> Lww {
        Lww { val, ts }
    }

    /// Merges a concurrent write: the larger timestamp wins; ties resolve to
    /// the incoming value so replays are idempotent.
    pub fn merge(&mut self, val: u64, ts: Timestamp) {
        if ts >= self.ts {
            self.val = val;
            self.ts = ts;
        }
    }
}

impl Encode for Lww {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.val.encode(buf);
        self.ts.encode(buf);
    }
}

impl Decode for Lww {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Lww {
            val: u64::decode(input)?,
            ts: Timestamp::decode(input)?,
        })
    }
}

/// Numeric fields mutated via commutative deltas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum NumField {
    /// Hard link count.
    Links,
    /// Number of directory entries.
    Children,
    /// Object size in bytes.
    Size,
}

/// Overwrite fields merged last-writer-wins.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum LwwField {
    /// Modification time.
    Mtime,
    /// Status change time.
    Ctime,
    /// Access time.
    Atime,
    /// Permission bits.
    Mode,
    /// Owning user.
    Uid,
    /// Owning group.
    Gid,
}

/// One entry of an `assignment_list` (paper Table 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FieldAssign {
    /// `field += delta` — commutative, lock-free mergeable.
    Delta {
        /// Target counter field.
        field: NumField,
        /// Signed increment.
        delta: i64,
    },
    /// `field = value` at timestamp `ts` — merged last-writer-wins.
    Set {
        /// Target overwrite field.
        field: LwwField,
        /// New value.
        value: u64,
        /// Timestamp assigned by the TS group, deciding the winner.
        ts: Timestamp,
    },
}

impl EncodeListItem for FieldAssign {}

impl Encode for FieldAssign {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FieldAssign::Delta { field, delta } => {
                buf.push(0);
                buf.push(*field as u8);
                delta.encode(buf);
            }
            FieldAssign::Set { field, value, ts } => {
                buf.push(1);
                buf.push(*field as u8);
                value.encode(buf);
                ts.encode(buf);
            }
        }
    }
}

impl Decode for FieldAssign {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => {
                let field = match u8::decode(input)? {
                    0 => NumField::Links,
                    1 => NumField::Children,
                    2 => NumField::Size,
                    t => return Err(DecodeError::InvalidTag(t)),
                };
                Ok(FieldAssign::Delta {
                    field,
                    delta: i64::decode(input)?,
                })
            }
            1 => {
                let field = match u8::decode(input)? {
                    0 => LwwField::Mtime,
                    1 => LwwField::Ctime,
                    2 => LwwField::Atime,
                    3 => LwwField::Mode,
                    4 => LwwField::Uid,
                    5 => LwwField::Gid,
                    t => return Err(DecodeError::InvalidTag(t)),
                };
                Ok(FieldAssign::Set {
                    field,
                    value: u64::decode(input)?,
                    ts: Timestamp::decode(input)?,
                })
            }
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// A predicate evaluated against one record inside a primitive's critical
/// section (the `WHERE` / condition clauses of paper Table 2 and Figure 8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pred {
    /// The record must exist.
    Exists,
    /// The record must not exist (implicit check of `INSERT`).
    NotExists,
    /// The record's `type` field must equal the given type.
    TypeIs(FileType),
    /// The record's `type` field must differ from the given type (e.g.
    /// `unlink` accepts files and symlinks but not directories).
    TypeIsNot(FileType),
    /// The record's `children` counter must equal the given value (directory
    /// emptiness check: `children = 0`).
    ChildrenEq(i64),
    /// The record's `id` field must equal the given inode id (used by rename
    /// to guard against the entry changing under the cached resolution).
    IdEq(InodeId),
    /// Quota admission on a volume's quota record: after charging `inodes`
    /// more inodes and `bytes` more logical bytes, usage (`links` counts
    /// inodes, `size` counts bytes) must stay within the record's limits
    /// (`inode_limit` / `byte_limit`; an unset limit is unlimited).
    ///
    /// Evaluated inside the replicated apply funnel like every predicate, so
    /// enforcement is deterministic: whichever create commits first under
    /// Raft takes the last slot, on every replica identically.
    QuotaHasRoom {
        /// Inodes about to be charged.
        inodes: i64,
        /// Logical bytes about to be charged.
        bytes: i64,
    },
}

impl EncodeListItem for Pred {}

impl Encode for Pred {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Pred::Exists => buf.push(0),
            Pred::NotExists => buf.push(1),
            Pred::TypeIs(t) => {
                buf.push(2);
                t.encode(buf);
            }
            Pred::ChildrenEq(n) => {
                buf.push(3);
                n.encode(buf);
            }
            Pred::IdEq(id) => {
                buf.push(4);
                id.encode(buf);
            }
            Pred::TypeIsNot(t) => {
                buf.push(5);
                t.encode(buf);
            }
            Pred::QuotaHasRoom { inodes, bytes } => {
                buf.push(6);
                inodes.encode(buf);
                bytes.encode(buf);
            }
        }
    }
}

impl Decode for Pred {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => Pred::Exists,
            1 => Pred::NotExists,
            2 => Pred::TypeIs(FileType::decode(input)?),
            3 => Pred::ChildrenEq(i64::decode(input)?),
            4 => Pred::IdEq(InodeId::decode(input)?),
            5 => Pred::TypeIsNot(FileType::decode(input)?),
            6 => Pred::QuotaHasRoom {
                inodes: i64::decode(input)?,
                bytes: i64::decode(input)?,
            },
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

/// A keyed condition: all `preds` must hold on the record at `key`.
///
/// `if_exist` marks deletions that are allowed to find nothing (the `ifexist`
/// keyword of Figure 8(c)): when the record is absent the deletion is skipped
/// instead of failing the whole primitive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cond {
    /// Record the predicates apply to.
    pub key: Key,
    /// Conjunction of predicates.
    pub preds: Vec<Pred>,
    /// Tolerate absence (skip rather than abort).
    pub if_exist: bool,
}

impl Cond {
    /// Condition requiring the record at `key` to exist with all `preds`.
    pub fn require(key: Key, preds: Vec<Pred>) -> Cond {
        Cond {
            key,
            preds,
            if_exist: false,
        }
    }

    /// Condition tolerating absence of the record at `key`.
    pub fn if_exist(key: Key, preds: Vec<Pred>) -> Cond {
        Cond {
            key,
            preds,
            if_exist: true,
        }
    }
}

impl EncodeListItem for Cond {}

impl Encode for Cond {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.key.encode(buf);
        self.preds.encode(buf);
        self.if_exist.encode(buf);
    }
}

impl Decode for Cond {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Cond {
            key: Key::decode(input)?,
            preds: Vec::<Pred>::decode(input)?,
            if_exist: bool::decode(input)?,
        })
    }
}

/// One row of the `inode_table`: all fields optional, unused fields `None`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Record {
    /// Inode id pointed to by an id record.
    pub id: Option<InodeId>,
    /// Inode type.
    pub ftype: Option<FileType>,
    /// Hard link count (attribute records).
    pub links: Option<i64>,
    /// Child entry count (directory attribute records).
    pub children: Option<i64>,
    /// Size in bytes (attribute records).
    pub size: Option<i64>,
    /// Modification time, LWW-merged.
    pub mtime: Option<Lww>,
    /// Status change time, LWW-merged.
    pub ctime: Option<Lww>,
    /// Access time, LWW-merged.
    pub atime: Option<Lww>,
    /// Permission bits, LWW-merged.
    pub mode: Option<Lww>,
    /// Owning user, LWW-merged.
    pub uid: Option<Lww>,
    /// Owning group, LWW-merged.
    pub gid: Option<Lww>,
    /// Symlink target for symlink id records.
    pub symlink_target: Option<String>,
    /// Parent directory pointer (baseline inline-attribute rows; CFS stores
    /// the parent in the `id` field of `/_ATTR` records instead).
    pub parent: Option<InodeId>,
    /// Inode-count quota limit (volume quota records only; `None` on a quota
    /// record means unlimited). Usage is tracked in `links` via deltas.
    pub inode_limit: Option<i64>,
    /// Logical-byte quota limit (volume quota records only). Usage is
    /// tracked in `size` via deltas.
    pub byte_limit: Option<i64>,
}

impl Record {
    /// Builds an id record pointing at `id` with type `ftype`.
    pub fn id_record(id: InodeId, ftype: FileType) -> Record {
        Record {
            id: Some(id),
            ftype: Some(ftype),
            ..Record::default()
        }
    }

    /// Builds the `/_ATTR` record of a new directory.
    pub fn dir_attr_record(now: u64, ts: Timestamp) -> Record {
        Record {
            ftype: Some(FileType::Dir),
            links: Some(2),
            children: Some(0),
            size: Some(0),
            mtime: Some(Lww::new(now, ts)),
            ctime: Some(Lww::new(now, ts)),
            atime: Some(Lww::new(now, ts)),
            mode: Some(Lww::new(u64::from(crate::attr::DEFAULT_DIR_MODE), ts)),
            uid: Some(Lww::new(0, ts)),
            gid: Some(Lww::new(0, ts)),
            ..Record::default()
        }
    }

    /// Builds a volume quota record: usage counters start at zero (`links`
    /// tracks inodes, `size` tracks logical bytes, both delta-applied), with
    /// the given limits (`None` = unlimited).
    pub fn quota_record(inode_limit: Option<i64>, byte_limit: Option<i64>) -> Record {
        Record {
            links: Some(0),
            size: Some(0),
            inode_limit,
            byte_limit,
            ..Record::default()
        }
    }

    /// Evaluates a single predicate against this record.
    pub fn check(&self, pred: &Pred) -> Result<(), FsError> {
        match pred {
            Pred::Exists => Ok(()),
            Pred::NotExists => Err(FsError::AlreadyExists),
            Pred::TypeIs(t) => {
                let actual = self
                    .ftype
                    .ok_or(FsError::Corrupted("record lacks type".into()))?;
                if actual == *t {
                    Ok(())
                } else if *t == FileType::Dir {
                    Err(FsError::NotDir)
                } else {
                    Err(FsError::IsDir)
                }
            }
            Pred::TypeIsNot(t) => {
                let actual = self
                    .ftype
                    .ok_or(FsError::Corrupted("record lacks type".into()))?;
                if actual != *t {
                    Ok(())
                } else if *t == FileType::Dir {
                    Err(FsError::IsDir)
                } else {
                    Err(FsError::NotDir)
                }
            }
            Pred::ChildrenEq(n) => {
                let actual = self.children.unwrap_or(0);
                if actual == *n {
                    Ok(())
                } else {
                    Err(FsError::NotEmpty)
                }
            }
            Pred::IdEq(id) => {
                if self.id == Some(*id) {
                    Ok(())
                } else {
                    Err(FsError::Conflict)
                }
            }
            Pred::QuotaHasRoom { inodes, bytes } => {
                let inode_ok = self
                    .inode_limit
                    .is_none_or(|lim| self.links.unwrap_or(0).saturating_add(*inodes) <= lim);
                let byte_ok = self
                    .byte_limit
                    .is_none_or(|lim| self.size.unwrap_or(0).saturating_add(*bytes) <= lim);
                if inode_ok && byte_ok {
                    Ok(())
                } else {
                    Err(FsError::QuotaExceeded)
                }
            }
        }
    }

    /// Applies one assignment with the merge semantics of paper §4.2.
    ///
    /// Counter deltas are plain signed additions, so concurrent deltas commute
    /// exactly regardless of application order; transiently negative values
    /// are permitted internally and clamped only when materializing an
    /// [`Attr`] snapshot. LWW sets keep the value with the largest timestamp.
    pub fn apply(&mut self, assign: &FieldAssign) {
        match assign {
            FieldAssign::Delta { field, delta } => {
                let slot = match field {
                    NumField::Links => &mut self.links,
                    NumField::Children => &mut self.children,
                    NumField::Size => &mut self.size,
                };
                let cur = slot.unwrap_or(0);
                *slot = Some(cur.wrapping_add(*delta));
            }
            FieldAssign::Set { field, value, ts } => {
                let slot = match field {
                    LwwField::Mtime => &mut self.mtime,
                    LwwField::Ctime => &mut self.ctime,
                    LwwField::Atime => &mut self.atime,
                    LwwField::Mode => &mut self.mode,
                    LwwField::Uid => &mut self.uid,
                    LwwField::Gid => &mut self.gid,
                };
                match slot {
                    Some(cell) => cell.merge(*value, *ts),
                    None => *slot = Some(Lww::new(*value, *ts)),
                }
            }
        }
    }

    /// Materializes a directory attribute record into a client-facing
    /// [`Attr`] snapshot for directory inode `ino`.
    pub fn to_dir_attr(&self, ino: InodeId) -> Result<Attr, FsError> {
        Ok(Attr {
            ino,
            ftype: self
                .ftype
                .ok_or(FsError::Corrupted("attr record lacks type".into()))?,
            links: self.links.unwrap_or(0).max(0) as u64,
            children: self.children.unwrap_or(0).max(0) as u64,
            size: self.size.unwrap_or(0).max(0) as u64,
            mtime: self.mtime.map_or(0, |l| l.val),
            ctime: self.ctime.map_or(0, |l| l.val),
            atime: self.atime.map_or(0, |l| l.val),
            mode: self.mode.map_or(0, |l| l.val) as u32,
            uid: self.uid.map_or(0, |l| l.val) as u32,
            gid: self.gid.map_or(0, |l| l.val) as u32,
            symlink_target: self.symlink_target.clone(),
            lww_ts: self.mtime.map_or(Timestamp::ZERO, |l| l.ts),
        })
    }
}

impl EncodeListItem for Record {}

impl Encode for Record {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.ftype.encode(buf);
        self.links.encode(buf);
        self.children.encode(buf);
        self.size.encode(buf);
        self.mtime.encode(buf);
        self.ctime.encode(buf);
        self.atime.encode(buf);
        self.mode.encode(buf);
        self.uid.encode(buf);
        self.gid.encode(buf);
        self.symlink_target.encode(buf);
        self.parent.encode(buf);
        self.inode_limit.encode(buf);
        self.byte_limit.encode(buf);
    }
}

impl Decode for Record {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Record {
            id: Option::<InodeId>::decode(input)?,
            ftype: Option::<FileType>::decode(input)?,
            links: Option::<i64>::decode(input)?,
            children: Option::<i64>::decode(input)?,
            size: Option::<i64>::decode(input)?,
            mtime: Option::<Lww>::decode(input)?,
            ctime: Option::<Lww>::decode(input)?,
            atime: Option::<Lww>::decode(input)?,
            mode: Option::<Lww>::decode(input)?,
            uid: Option::<Lww>::decode(input)?,
            gid: Option::<Lww>::decode(input)?,
            symlink_target: Option::<String>::decode(input)?,
            parent: Option::<InodeId>::decode(input)?,
            inode_limit: Option::<i64>::decode(input)?,
            byte_limit: Option::<i64>::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn delta_apply_is_commutative() {
        let mut a = Record::dir_attr_record(0, Timestamp(1));
        let mut b = a.clone();
        let d1 = FieldAssign::Delta {
            field: NumField::Children,
            delta: 3,
        };
        let d2 = FieldAssign::Delta {
            field: NumField::Children,
            delta: -1,
        };
        a.apply(&d1);
        a.apply(&d2);
        b.apply(&d2);
        b.apply(&d1);
        assert_eq!(a.children, b.children);
        assert_eq!(a.children, Some(2));
    }

    #[test]
    fn negative_counters_clamp_in_attr_snapshot() {
        let mut r = Record::dir_attr_record(0, Timestamp(1));
        r.apply(&FieldAssign::Delta {
            field: NumField::Children,
            delta: -5,
        });
        // Internally the delta sum is preserved (commutativity)...
        assert_eq!(r.children, Some(-5));
        // ...but the client-visible snapshot clamps to zero.
        let attr = r.to_dir_attr(InodeId(1)).unwrap();
        assert_eq!(attr.children, 0);
    }

    #[test]
    fn lww_keeps_largest_timestamp() {
        let mut r = Record::dir_attr_record(0, Timestamp(1));
        r.apply(&FieldAssign::Set {
            field: LwwField::Mtime,
            value: 50,
            ts: Timestamp(10),
        });
        r.apply(&FieldAssign::Set {
            field: LwwField::Mtime,
            value: 40,
            ts: Timestamp(5),
        });
        assert_eq!(
            r.mtime.unwrap().val,
            50,
            "older write must not clobber newer one"
        );
    }

    #[test]
    fn predicate_type_mismatch_maps_to_posix_errors() {
        let file = Record::id_record(InodeId(2), FileType::File);
        assert_eq!(
            file.check(&Pred::TypeIs(FileType::Dir)),
            Err(FsError::NotDir)
        );
        let dir = Record::id_record(InodeId(3), FileType::Dir);
        assert_eq!(
            dir.check(&Pred::TypeIs(FileType::File)),
            Err(FsError::IsDir)
        );
    }

    #[test]
    fn emptiness_check() {
        let mut r = Record::dir_attr_record(0, Timestamp(1));
        assert!(r.check(&Pred::ChildrenEq(0)).is_ok());
        r.apply(&FieldAssign::Delta {
            field: NumField::Children,
            delta: 1,
        });
        assert_eq!(r.check(&Pred::ChildrenEq(0)), Err(FsError::NotEmpty));
    }

    #[test]
    fn record_codec_round_trip() {
        let r = Record::dir_attr_record(123, Timestamp(9));
        let buf = r.to_bytes();
        assert_eq!(Record::from_bytes(&buf).unwrap(), r);
        let id = Record::id_record(InodeId(77), FileType::Symlink);
        let buf = id.to_bytes();
        assert_eq!(Record::from_bytes(&buf).unwrap(), id);
        let q = Record::quota_record(Some(100), None);
        let buf = q.to_bytes();
        assert_eq!(Record::from_bytes(&buf).unwrap(), q);
    }

    #[test]
    fn quota_predicate_admits_exactly_to_the_limit() {
        let mut q = Record::quota_record(Some(2), Some(1000));
        // Empty volume: one inode of 600 bytes fits.
        let want = Pred::QuotaHasRoom {
            inodes: 1,
            bytes: 600,
        };
        assert!(q.check(&want).is_ok());
        q.apply(&FieldAssign::Delta {
            field: NumField::Links,
            delta: 1,
        });
        q.apply(&FieldAssign::Delta {
            field: NumField::Size,
            delta: 600,
        });
        // Create-at-exact-limit: the second inode lands exactly on the inode
        // limit and 400 more bytes exactly on the byte limit — admitted.
        assert!(q
            .check(&Pred::QuotaHasRoom {
                inodes: 1,
                bytes: 400,
            })
            .is_ok());
        // One byte or one inode over is rejected with the typed error.
        assert_eq!(
            q.check(&Pred::QuotaHasRoom {
                inodes: 1,
                bytes: 401,
            }),
            Err(FsError::QuotaExceeded)
        );
        q.apply(&FieldAssign::Delta {
            field: NumField::Links,
            delta: 1,
        });
        assert_eq!(
            q.check(&Pred::QuotaHasRoom {
                inodes: 1,
                bytes: 0,
            }),
            Err(FsError::QuotaExceeded)
        );
        // Releases (negative deltas) always pass.
        assert!(q
            .check(&Pred::QuotaHasRoom {
                inodes: -1,
                bytes: -600,
            })
            .is_ok());
    }

    #[test]
    fn unlimited_quota_record_admits_everything() {
        let q = Record::quota_record(None, None);
        assert!(q
            .check(&Pred::QuotaHasRoom {
                inodes: i64::MAX / 2,
                bytes: i64::MAX / 2,
            })
            .is_ok());
    }

    #[test]
    fn quota_pred_codec_round_trip() {
        let p = Pred::QuotaHasRoom {
            inodes: 1,
            bytes: -42,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(Pred::decode(&mut input).unwrap(), p);
    }

    fn arb_delta() -> impl Strategy<Value = FieldAssign> {
        (0..3u8, -4i64..8).prop_map(|(f, d)| FieldAssign::Delta {
            field: match f {
                0 => NumField::Links,
                1 => NumField::Children,
                _ => NumField::Size,
            },
            delta: d,
        })
    }

    proptest! {
        #[test]
        fn prop_delta_merge_order_independent(
            deltas in proptest::collection::vec(arb_delta(), 1..24),
            seed: u64,
        ) {
            // Delta application must commute exactly: this is the property
            // that lets TafDB drop locks around spurious conflicts (§4.2).
            let base = Record::dir_attr_record(0, Timestamp(1));

            let mut in_order = base.clone();
            for d in &deltas { in_order.apply(d); }

            // Shuffle deterministically from the seed.
            let mut shuffled = deltas.clone();
            let mut state = seed | 1;
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let mut reordered = base.clone();
            for d in &shuffled { reordered.apply(d); }
            prop_assert_eq!(in_order, reordered);
        }

        #[test]
        fn prop_lww_converges_regardless_of_order(
            writes in proptest::collection::vec((0u64..1000, 1u64..1000), 1..16),
        ) {
            let mut forward = Record::default();
            let mut backward = Record::default();
            for (v, ts) in &writes {
                forward.apply(&FieldAssign::Set {
                    field: LwwField::Mtime, value: *v, ts: Timestamp(*ts),
                });
            }
            for (v, ts) in writes.iter().rev() {
                backward.apply(&FieldAssign::Set {
                    field: LwwField::Mtime, value: *v, ts: Timestamp(*ts),
                });
            }
            // Both orders must agree on the winning timestamp.
            prop_assert_eq!(
                forward.mtime.unwrap().ts,
                backward.mtime.unwrap().ts
            );
        }

        #[test]
        fn prop_record_codec_round_trip(
            id: Option<u64>, links: Option<i64>, children: Option<i64>,
            mt in proptest::option::of((0u64..u64::MAX, 0u64..u64::MAX)),
        ) {
            let r = Record {
                id: id.map(InodeId),
                ftype: Some(FileType::Dir),
                links,
                children,
                mtime: mt.map(|(v, t)| Lww::new(v, Timestamp(t))),
                ..Record::default()
            };
            let buf = r.to_bytes();
            prop_assert_eq!(Record::from_bytes(&buf).unwrap(), r);
        }
    }
}

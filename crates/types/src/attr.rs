//! File and directory attributes as exposed to clients (`stat`-style).

use crate::codec::{Decode, DecodeError, Encode};
use crate::id::InodeId;
use crate::time::Timestamp;

/// The type of an inode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FileType {
    /// Regular file.
    File,
    /// Directory.
    Dir,
    /// Symbolic link.
    Symlink,
}

impl Encode for FileType {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            FileType::File => 0,
            FileType::Dir => 1,
            FileType::Symlink => 2,
        });
    }
}

impl Decode for FileType {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(input)? {
            0 => Ok(FileType::File),
            1 => Ok(FileType::Dir),
            2 => Ok(FileType::Symlink),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// A full attribute snapshot of an inode, the result of `getattr`.
///
/// For files these key-value pairs live in FileStore's per-node RocksDB-style
/// store (paper §4.1, "keys are inode ids while values are byte streams
/// encoded by file attributes"); for directories they are materialized from
/// the `/_ATTR` record in TafDB's `inode_table`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Attr {
    /// Inode id of the object itself.
    pub ino: InodeId,
    /// File, directory, or symlink.
    pub ftype: FileType,
    /// Hard link count. Directories count `.`/`..`-style links: 2 + number of
    /// child directories, as in ext4.
    pub links: u64,
    /// Number of directory entries (0 for files).
    pub children: u64,
    /// Size in bytes (for directories: a nominal entry-count-scaled size).
    pub size: u64,
    /// Last modification time (logical microseconds).
    pub mtime: u64,
    /// Last status change time.
    pub ctime: u64,
    /// Last access time.
    pub atime: u64,
    /// Permission bits.
    pub mode: u32,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id.
    pub gid: u32,
    /// Symlink target, when `ftype` is [`FileType::Symlink`].
    pub symlink_target: Option<String>,
    /// Timestamp of the last last-writer-wins mutation, used by the merge
    /// procedures of paper §4.2.
    pub lww_ts: Timestamp,
}

/// Default permission bits for new files (`rw-r--r--`).
pub const DEFAULT_FILE_MODE: u32 = 0o644;
/// Default permission bits for new directories (`rwxr-xr-x`).
pub const DEFAULT_DIR_MODE: u32 = 0o755;

impl Attr {
    /// Builds the attribute record of a freshly created regular file.
    pub fn new_file(ino: InodeId, now: u64) -> Attr {
        Attr {
            ino,
            ftype: FileType::File,
            links: 1,
            children: 0,
            size: 0,
            mtime: now,
            ctime: now,
            atime: now,
            mode: DEFAULT_FILE_MODE,
            uid: 0,
            gid: 0,
            symlink_target: None,
            lww_ts: Timestamp::ZERO,
        }
    }

    /// Builds the attribute record of a freshly created directory.
    pub fn new_dir(ino: InodeId, now: u64) -> Attr {
        Attr {
            ino,
            ftype: FileType::Dir,
            links: 2,
            children: 0,
            size: 0,
            mtime: now,
            ctime: now,
            atime: now,
            mode: DEFAULT_DIR_MODE,
            uid: 0,
            gid: 0,
            symlink_target: None,
            lww_ts: Timestamp::ZERO,
        }
    }

    /// Builds the attribute record of a freshly created symlink.
    pub fn new_symlink(ino: InodeId, now: u64, target: impl Into<String>) -> Attr {
        Attr {
            ino,
            ftype: FileType::Symlink,
            links: 1,
            children: 0,
            size: 0,
            mtime: now,
            ctime: now,
            atime: now,
            mode: 0o777,
            uid: 0,
            gid: 0,
            symlink_target: Some(target.into()),
            lww_ts: Timestamp::ZERO,
        }
    }

    /// Returns true for directories.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Dir
    }
}

impl Encode for Attr {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.ino.encode(buf);
        self.ftype.encode(buf);
        self.links.encode(buf);
        self.children.encode(buf);
        self.size.encode(buf);
        self.mtime.encode(buf);
        self.ctime.encode(buf);
        self.atime.encode(buf);
        self.mode.encode(buf);
        self.uid.encode(buf);
        self.gid.encode(buf);
        self.symlink_target.encode(buf);
        self.lww_ts.encode(buf);
    }
}

impl Decode for Attr {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Attr {
            ino: InodeId::decode(input)?,
            ftype: FileType::decode(input)?,
            links: u64::decode(input)?,
            children: u64::decode(input)?,
            size: u64::decode(input)?,
            mtime: u64::decode(input)?,
            ctime: u64::decode(input)?,
            atime: u64::decode(input)?,
            mode: u32::decode(input)?,
            uid: u32::decode(input)?,
            gid: u32::decode(input)?,
            symlink_target: Option::<String>::decode(input)?,
            lww_ts: Timestamp::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_file_defaults() {
        let a = Attr::new_file(InodeId(5), 1000);
        assert_eq!(a.links, 1);
        assert_eq!(a.children, 0);
        assert_eq!(a.mode, DEFAULT_FILE_MODE);
        assert!(!a.is_dir());
    }

    #[test]
    fn new_dir_defaults() {
        let a = Attr::new_dir(InodeId(6), 1000);
        assert_eq!(a.links, 2);
        assert!(a.is_dir());
        assert_eq!(a.mode, DEFAULT_DIR_MODE);
    }

    #[test]
    fn attr_codec_round_trip() {
        let mut a = Attr::new_symlink(InodeId(9), 777, "/target/path");
        a.size = 12345;
        a.lww_ts = Timestamp(42);
        let buf = a.to_bytes();
        assert_eq!(Attr::from_bytes(&buf).unwrap(), a);
    }

    #[test]
    fn attr_value_is_compact() {
        // Paper §4.1: each file attribute record consumes ~0.2 KB; our encoded
        // form must stay well under that.
        let a = Attr::new_file(InodeId(u64::MAX), u64::MAX);
        assert!(a.to_bytes().len() < 200);
    }
}

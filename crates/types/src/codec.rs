//! A compact hand-rolled binary codec.
//!
//! WAL entries, RPC payloads, and kvstore values are serialized with this
//! codec instead of pulling in a serde format crate (see DESIGN.md §4).
//! Unsigned integers use LEB128 varints; signed integers use zigzag + varint;
//! composite types are encoded field by field in declaration order.
//!
//! The codec is intentionally *not* self-describing: the decoder must know the
//! type it expects, exactly like the on-wire formats of production storage
//! systems. Round-trip correctness is property-tested in this module.

use std::fmt;

/// Error returned when decoding malformed or truncated input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A varint ran over the maximum encodable width.
    VarintOverflow,
    /// An enum discriminant or bool byte had an unknown value.
    InvalidTag(u8),
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A length prefix exceeded the sanity limit.
    LengthTooLarge(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t:#x}"),
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8 in string"),
            DecodeError::LengthTooLarge(n) => write!(f, "length prefix too large: {n}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maximum accepted length prefix for variable-size payloads (64 MiB).
///
/// This bounds allocation on corrupt input; no legitimate metadata payload in
/// this system approaches it.
const MAX_LEN: u64 = 64 << 20;

/// Types that can serialize themselves into a byte buffer.
pub trait Encode {
    /// Appends the binary representation of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Convenience wrapper returning a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Types that can deserialize themselves from a byte slice.
///
/// `input` is advanced past the consumed bytes so values can be decoded in
/// sequence.
pub trait Decode: Sized {
    /// Reads one value from the front of `input`.
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Decodes a value that must consume the entire slice.
    fn from_bytes(mut input: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(DecodeError::LengthTooLarge(input.len() as u64))
        }
    }
}

fn read_byte(input: &mut &[u8]) -> Result<u8, DecodeError> {
    let (&b, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
    *input = rest;
    Ok(b)
}

/// Writes `v` as an LEB128 varint.
pub fn write_varint(mut v: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
pub fn read_varint(input: &mut &[u8]) -> Result<u64, DecodeError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = read_byte(input)?;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                write_varint(u64::from(*self), buf);
            }
        }
        impl Decode for $t {
            fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
                let v = read_varint(input)?;
                <$t>::try_from(v).map_err(|_| DecodeError::VarintOverflow)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64);

impl Encode for i64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(zigzag(*self), buf);
    }
}

impl Decode for i64 {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(unzigzag(read_varint(input)?))
    }
}

impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(*self as u64, buf);
    }
}

impl Decode for usize {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = read_varint(input)?;
        usize::try_from(v).map_err(|_| DecodeError::VarintOverflow)
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_byte(input)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_bytes().to_vec().encode(buf);
    }
}

impl Decode for String {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let bytes = Vec::<u8>::decode(input)?;
        String::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        buf.extend_from_slice(self);
    }
}

impl Decode for Vec<u8> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_varint(input)?;
        if len > MAX_LEN {
            return Err(DecodeError::LengthTooLarge(len));
        }
        let len = len as usize;
        if input.len() < len {
            return Err(DecodeError::UnexpectedEof);
        }
        let (head, rest) = input.split_at(len);
        *input = rest;
        Ok(head.to_vec())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        match read_byte(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Encodes a sequence of already-encodable items with a length prefix.
impl<T: Encode> Encode for Vec<T>
where
    T: EncodeListItem,
{
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(self.len() as u64, buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode + EncodeListItem> Decode for Vec<T> {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = read_varint(input)?;
        if len > MAX_LEN {
            return Err(DecodeError::LengthTooLarge(len));
        }
        let mut out = Vec::with_capacity(usize::try_from(len).unwrap_or(0).min(1024));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

/// Marker trait distinguishing list-element types from `u8`.
///
/// `Vec<u8>` has a dedicated compact impl above; all other `Vec<T>` encodings
/// go through the generic list impl. Implement this marker for any type that
/// appears inside a `Vec`.
pub trait EncodeListItem {}

impl EncodeListItem for String {}
impl EncodeListItem for u64 {}
impl EncodeListItem for i64 {}
impl EncodeListItem for u32 {}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn varint_rejects_truncated_input() {
        let buf = vec![0x80u8, 0x80];
        let mut input = buf.as_slice();
        assert_eq!(read_varint(&mut input), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn varint_rejects_overflow() {
        // 10 continuation bytes with high bits would exceed 64 bits.
        let buf = vec![0xffu8; 10];
        let mut input = buf.as_slice();
        assert_eq!(read_varint(&mut input), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(99);
        let none: Option<u64> = None;
        let mut buf = Vec::new();
        some.encode(&mut buf);
        none.encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(Option::<u64>::decode(&mut input).unwrap(), Some(99));
        assert_eq!(Option::<u64>::decode(&mut input).unwrap(), None);
    }

    #[test]
    fn string_rejects_invalid_utf8() {
        let mut buf = Vec::new();
        vec![0xffu8, 0xfe].encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(String::decode(&mut input), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn bytes_rejects_absurd_length() {
        let mut buf = Vec::new();
        write_varint(u64::MAX, &mut buf);
        let mut input = buf.as_slice();
        assert!(matches!(
            Vec::<u8>::decode(&mut input),
            Err(DecodeError::LengthTooLarge(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_u64_round_trip(v: u64) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut input = buf.as_slice();
            prop_assert_eq!(u64::decode(&mut input).unwrap(), v);
            prop_assert!(input.is_empty());
        }

        #[test]
        fn prop_i64_round_trip(v: i64) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut input = buf.as_slice();
            prop_assert_eq!(i64::decode(&mut input).unwrap(), v);
        }

        #[test]
        fn prop_string_round_trip(s in ".*") {
            let s = s.to_string();
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let mut input = buf.as_slice();
            prop_assert_eq!(String::decode(&mut input).unwrap(), s);
        }

        #[test]
        fn prop_bytes_round_trip(v: Vec<u8>) {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            let mut input = buf.as_slice();
            prop_assert_eq!(Vec::<u8>::decode(&mut input).unwrap(), v);
        }

        #[test]
        fn prop_decoder_never_panics(v: Vec<u8>) {
            // Feeding arbitrary bytes to every decoder must error, not panic.
            let mut i1 = v.as_slice();
            let _ = u64::decode(&mut i1);
            let mut i2 = v.as_slice();
            let _ = String::decode(&mut i2);
            let mut i3 = v.as_slice();
            let _ = Vec::<u8>::decode(&mut i3);
            let mut i4 = v.as_slice();
            let _ = Option::<u64>::decode(&mut i4);
        }

        #[test]
        fn prop_zigzag_round_trip(v: i64) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}

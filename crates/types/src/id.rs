//! Identifier newtypes used across the system.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode, EncodeListItem};

/// Identifier of a file or directory inode.
///
/// Inode ids are allocated by the metadata service and are unique for the
/// lifetime of a file system instance. The root directory always has
/// [`ROOT_INODE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InodeId(pub u64);

/// The fixed inode id of the file system root directory.
pub const ROOT_INODE: InodeId = InodeId(1);

impl InodeId {
    /// Returns the raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns true for the reserved "no inode" sentinel (id 0).
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino#{}", self.0)
    }
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a node (server process) in the simulated cluster.
///
/// Every addressable endpoint in the [`cfs-rpc`] network — TafDB backends,
/// FileStore nodes, Renamer replicas, time servers, metadata proxies — gets a
/// distinct `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a metadata shard within TafDB (a contiguous `kID` range).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// Identifier of a file data block stored in FileStore.
///
/// A block id is the pair of the owning file's inode id and the block index
/// within the file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId {
    /// The file this block belongs to.
    pub ino: InodeId,
    /// Zero-based index of the block within the file.
    pub index: u32,
}

impl Encode for InodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for InodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(InodeId(u64::decode(input)?))
    }
}

impl EncodeListItem for NodeId {}

impl Encode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for NodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(input)?))
    }
}

impl Encode for ShardId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for ShardId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ShardId(u32::decode(input)?))
    }
}

impl Encode for BlockId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.ino.encode(buf);
        self.index.encode(buf);
    }
}

impl Decode for BlockId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(BlockId {
            ino: InodeId::decode(input)?,
            index: u32::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_inode_is_one() {
        assert_eq!(ROOT_INODE.raw(), 1);
        assert!(!ROOT_INODE.is_null());
        assert!(InodeId(0).is_null());
    }

    #[test]
    fn inode_id_orders_numerically() {
        assert!(InodeId(2) < InodeId(10));
        assert!(InodeId(10) > ROOT_INODE);
    }

    #[test]
    fn id_codec_round_trip() {
        let mut buf = Vec::new();
        InodeId(42).encode(&mut buf);
        NodeId(7).encode(&mut buf);
        ShardId(3).encode(&mut buf);
        BlockId {
            ino: InodeId(9),
            index: 4,
        }
        .encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(InodeId::decode(&mut input).unwrap(), InodeId(42));
        assert_eq!(NodeId::decode(&mut input).unwrap(), NodeId(7));
        assert_eq!(ShardId::decode(&mut input).unwrap(), ShardId(3));
        assert_eq!(
            BlockId::decode(&mut input).unwrap(),
            BlockId {
                ino: InodeId(9),
                index: 4
            }
        );
        assert!(input.is_empty());
    }
}

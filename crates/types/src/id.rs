//! Identifier newtypes used across the system.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode, EncodeListItem};

/// Identifier of a file or directory inode.
///
/// Inode ids are allocated by the metadata service and are unique for the
/// lifetime of a file system instance. The root directory always has
/// [`ROOT_INODE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InodeId(pub u64);

/// The fixed inode id of the file system root directory.
///
/// With the volume-prefixed id layout this is the root of the *default
/// volume* ([`VolumeId::DEFAULT`]): volume 0, local id 1.
pub const ROOT_INODE: InodeId = InodeId(1);

/// Bits of an [`InodeId`] reserved for the owning volume (tenant) id.
///
/// The volume id occupies the *top* 16 bits of the 64-bit inode id. Because
/// TafDB's sortable key encoding leads with the 8-byte big-endian `kID`,
/// the volume id is literally a byte prefix of the key schema: every record
/// of a volume sorts into one contiguous key band, so range partitioning,
/// shard splits, and migrations are tenant-aware with no kv-layer changes.
pub const VOLUME_SHIFT: u32 = 48;

/// Identifier of a volume (tenant namespace). Volume 0 is the default
/// volume whose root is the classic [`ROOT_INODE`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VolumeId(pub u16);

impl VolumeId {
    /// The default volume: the namespace every pre-volume client lives in.
    pub const DEFAULT: VolumeId = VolumeId(0);

    /// First inode id of this volume's key band (`v << 48`). The band-start
    /// id has local id 0 — never allocated to a file — and hosts the
    /// volume's quota record.
    pub fn band_start(self) -> InodeId {
        InodeId((self.0 as u64) << VOLUME_SHIFT)
    }

    /// Last inode id of this volume's key band (inclusive).
    pub fn band_end(self) -> InodeId {
        InodeId(((self.0 as u64) << VOLUME_SHIFT) | ((1u64 << VOLUME_SHIFT) - 1))
    }

    /// The reserved kid holding this volume's quota record (local id 0).
    pub fn quota_kid(self) -> InodeId {
        self.band_start()
    }

    /// This volume's root directory inode (local id 1).
    pub fn root_inode(self) -> InodeId {
        InodeId::compose(self, 1)
    }
}

impl fmt::Debug for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol#{}", self.0)
    }
}

impl fmt::Display for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Encode for VolumeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for VolumeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(VolumeId(u16::decode(input)?))
    }
}

impl InodeId {
    /// Returns the raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns true for the reserved "no inode" sentinel (id 0).
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Builds an inode id from a volume and a 48-bit volume-local id.
    pub fn compose(vol: VolumeId, local: u64) -> InodeId {
        debug_assert!(local < (1u64 << VOLUME_SHIFT), "local id overflows band");
        InodeId(((vol.0 as u64) << VOLUME_SHIFT) | local)
    }

    /// The volume (tenant) this inode belongs to, from the id's top bits.
    pub fn volume(self) -> VolumeId {
        VolumeId((self.0 >> VOLUME_SHIFT) as u16)
    }

    /// The 48-bit volume-local part of the id.
    pub fn local(self) -> u64 {
        self.0 & ((1u64 << VOLUME_SHIFT) - 1)
    }
}

impl fmt::Debug for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino#{}", self.0)
    }
}

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a node (server process) in the simulated cluster.
///
/// Every addressable endpoint in the [`cfs-rpc`] network — TafDB backends,
/// FileStore nodes, Renamer replicas, time servers, metadata proxies — gets a
/// distinct `NodeId`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a metadata shard within TafDB (a contiguous `kID` range).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl fmt::Debug for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard#{}", self.0)
    }
}

/// Identifier of a file data block stored in FileStore.
///
/// A block id is the pair of the owning file's inode id and the block index
/// within the file.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId {
    /// The file this block belongs to.
    pub ino: InodeId,
    /// Zero-based index of the block within the file.
    pub index: u32,
}

impl Encode for InodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for InodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(InodeId(u64::decode(input)?))
    }
}

impl EncodeListItem for NodeId {}

impl Encode for NodeId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for NodeId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(NodeId(u32::decode(input)?))
    }
}

impl Encode for ShardId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for ShardId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(ShardId(u32::decode(input)?))
    }
}

impl Encode for BlockId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.ino.encode(buf);
        self.index.encode(buf);
    }
}

impl Decode for BlockId {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(BlockId {
            ino: InodeId::decode(input)?,
            index: u32::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_inode_is_one() {
        assert_eq!(ROOT_INODE.raw(), 1);
        assert!(!ROOT_INODE.is_null());
        assert!(InodeId(0).is_null());
    }

    #[test]
    fn inode_id_orders_numerically() {
        assert!(InodeId(2) < InodeId(10));
        assert!(InodeId(10) > ROOT_INODE);
    }

    #[test]
    fn volume_prefix_occupies_the_top_bits() {
        assert_eq!(ROOT_INODE.volume(), VolumeId::DEFAULT);
        assert_eq!(VolumeId::DEFAULT.root_inode(), ROOT_INODE);
        let v = VolumeId(3);
        let ino = InodeId::compose(v, 42);
        assert_eq!(ino.volume(), v);
        assert_eq!(ino.local(), 42);
        assert_eq!(v.band_start().raw(), 3u64 << 48);
        assert_eq!(v.band_end().raw(), (4u64 << 48) - 1);
        assert_eq!(v.quota_kid(), v.band_start());
        assert_eq!(v.root_inode().raw(), (3u64 << 48) | 1);
        // Bands are disjoint and ordered: every id of volume 3 sorts
        // strictly between volume 2's and volume 4's bands.
        assert!(VolumeId(2).band_end() < v.band_start());
        assert!(v.band_end() < VolumeId(4).band_start());
    }

    #[test]
    fn id_codec_round_trip() {
        let mut buf = Vec::new();
        InodeId(42).encode(&mut buf);
        NodeId(7).encode(&mut buf);
        ShardId(3).encode(&mut buf);
        BlockId {
            ino: InodeId(9),
            index: 4,
        }
        .encode(&mut buf);
        let mut input = buf.as_slice();
        assert_eq!(InodeId::decode(&mut input).unwrap(), InodeId(42));
        assert_eq!(NodeId::decode(&mut input).unwrap(), NodeId(7));
        assert_eq!(ShardId::decode(&mut input).unwrap(), ShardId(3));
        assert_eq!(
            BlockId::decode(&mut input).unwrap(),
            BlockId {
                ino: InodeId(9),
                index: 4
            }
        );
        assert!(input.is_empty());
    }
}

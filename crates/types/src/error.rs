//! Errno-style error type shared across the file system.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};

/// Result alias used throughout the CFS crates.
pub type FsResult<T> = Result<T, FsError>;

/// File system error, modelled after the POSIX errno values the paper's
/// metadata operations can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// ENOENT: path component or inode does not exist.
    NotFound,
    /// EEXIST: target name already exists.
    AlreadyExists,
    /// ENOTDIR: a non-directory appeared where a directory was required.
    NotDir,
    /// EISDIR: a directory appeared where a file was required.
    IsDir,
    /// ENOTEMPTY: directory removal attempted on a non-empty directory.
    NotEmpty,
    /// EINVAL: malformed argument (empty name, `.`/`..`, embedded `/`, ...).
    Invalid(String),
    /// ELOOP-style violation: the rename would create an orphaned loop.
    Loop,
    /// EBUSY: resource locked by a conflicting operation (baselines only
    /// surface this on lock timeouts).
    Busy,
    /// A transaction was aborted due to a conflicting concurrent transaction.
    Conflict,
    /// The request timed out (network partition, dead node).
    Timeout,
    /// ENOSPC-style failure from the storage layer.
    NoSpace,
    /// EIO: underlying storage failure with detail.
    Io(String),
    /// Internal invariant violation detected (corruption); carries detail.
    Corrupted(String),
    /// The contacted node is not the leader / not responsible for the shard;
    /// carries an optional redirect hint (raw node id).
    NotLeader(Option<u32>),
    /// The operation is not supported by this system variant.
    Unsupported(String),
    /// The contacted shard no longer owns (or is migrating away) the key
    /// range; carries the partition-map epoch at which ownership changed
    /// (0 while a migration is still in flight). Clients refresh their
    /// cached map from the placement driver and retry.
    WrongShard(u64),
    /// EDQUOT: the operation would push the volume past its inode or byte
    /// quota. Not retryable — the tenant must free space first.
    QuotaExceeded,
}

impl FsError {
    /// Returns true when retrying the same request against the same service
    /// may succeed (leadership changes, timeouts, transient conflicts, and a
    /// shard degraded by a full log volume that may be freed).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FsError::Timeout
                | FsError::NotLeader(_)
                | FsError::Conflict
                | FsError::Busy
                | FsError::WrongShard(_)
                | FsError::NoSpace
        )
    }

    /// Numeric code used on the wire.
    fn tag(&self) -> u8 {
        match self {
            FsError::NotFound => 0,
            FsError::AlreadyExists => 1,
            FsError::NotDir => 2,
            FsError::IsDir => 3,
            FsError::NotEmpty => 4,
            FsError::Invalid(_) => 5,
            FsError::Loop => 6,
            FsError::Busy => 7,
            FsError::Conflict => 8,
            FsError::Timeout => 9,
            FsError::NoSpace => 10,
            FsError::Io(_) => 11,
            FsError::Corrupted(_) => 12,
            FsError::NotLeader(_) => 13,
            FsError::Unsupported(_) => 14,
            FsError::WrongShard(_) => 15,
            FsError::QuotaExceeded => 16,
        }
    }
}

/// Typed storage-layer failure, surfaced by WAL and snapshot readers.
///
/// Distinguishes the faults a durable device can inflict: running out of
/// space, wedging after a torn write, and — the bit-rot case — returning
/// data whose checksum no longer matches what was written. Readers must
/// surface [`StorageError::Corrupt`] instead of panicking so a replica with
/// a rotten disk can be rebuilt from its peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The device is out of space.
    NoSpace,
    /// The device wedged after a torn write; everything fails until healed.
    Wedged,
    /// Read-back data failed its checksum (bit rot / misdirected write).
    Corrupt(String),
    /// Other I/O failure.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSpace => write!(f, "no space left on device"),
            StorageError::Wedged => write!(f, "storage device is wedged"),
            StorageError::Corrupt(d) => write!(f, "storage corruption detected: {d}"),
            StorageError::Io(d) => write!(f, "storage i/o error: {d}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for FsError {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::NoSpace => FsError::NoSpace,
            StorageError::Wedged => FsError::Io("storage device is wedged".into()),
            StorageError::Corrupt(d) => FsError::Corrupted(format!("storage bit rot: {d}")),
            StorageError::Io(d) => FsError::Io(d),
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NotDir => write!(f, "not a directory"),
            FsError::IsDir => write!(f, "is a directory"),
            FsError::NotEmpty => write!(f, "directory not empty"),
            FsError::Invalid(d) => write!(f, "invalid argument: {d}"),
            FsError::Loop => write!(f, "rename would create an orphaned loop"),
            FsError::Busy => write!(f, "resource busy"),
            FsError::Conflict => write!(f, "transaction conflict"),
            FsError::Timeout => write!(f, "request timed out"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::Io(d) => write!(f, "i/o error: {d}"),
            FsError::Corrupted(d) => write!(f, "metadata corruption detected: {d}"),
            FsError::NotLeader(hint) => match hint {
                Some(n) => write!(f, "not leader; try node {n}"),
                None => write!(f, "not leader"),
            },
            FsError::Unsupported(d) => write!(f, "operation not supported: {d}"),
            FsError::WrongShard(epoch) => {
                write!(f, "shard no longer owns the range (map epoch {epoch})")
            }
            FsError::QuotaExceeded => write!(f, "volume quota exceeded"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DecodeError> for FsError {
    fn from(e: DecodeError) -> Self {
        FsError::Corrupted(format!("decode failure: {e}"))
    }
}

impl From<std::io::Error> for FsError {
    fn from(e: std::io::Error) -> Self {
        FsError::Io(e.to_string())
    }
}

impl Encode for FsError {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(self.tag());
        match self {
            FsError::Invalid(d)
            | FsError::Io(d)
            | FsError::Corrupted(d)
            | FsError::Unsupported(d) => d.clone().encode(buf),
            FsError::NotLeader(hint) => hint.encode(buf),
            FsError::WrongShard(epoch) => epoch.encode(buf),
            _ => {}
        }
    }
}

impl Decode for FsError {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let tag = u8::decode(input)?;
        Ok(match tag {
            0 => FsError::NotFound,
            1 => FsError::AlreadyExists,
            2 => FsError::NotDir,
            3 => FsError::IsDir,
            4 => FsError::NotEmpty,
            5 => FsError::Invalid(String::decode(input)?),
            6 => FsError::Loop,
            7 => FsError::Busy,
            8 => FsError::Conflict,
            9 => FsError::Timeout,
            10 => FsError::NoSpace,
            11 => FsError::Io(String::decode(input)?),
            12 => FsError::Corrupted(String::decode(input)?),
            13 => FsError::NotLeader(Option::<u32>::decode(input)?),
            14 => FsError::Unsupported(String::decode(input)?),
            15 => FsError::WrongShard(u64::decode(input)?),
            16 => FsError::QuotaExceeded,
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Decode;

    #[test]
    fn retryability_classification() {
        assert!(FsError::Timeout.is_retryable());
        assert!(FsError::NotLeader(Some(3)).is_retryable());
        assert!(FsError::Conflict.is_retryable());
        assert!(FsError::WrongShard(3).is_retryable());
        assert!(
            FsError::NoSpace.is_retryable(),
            "a full shard volume is a degraded state clients back off on"
        );
        assert!(!FsError::NotFound.is_retryable());
        assert!(!FsError::AlreadyExists.is_retryable());
        assert!(!FsError::Io("torn".into()).is_retryable());
        assert!(
            !FsError::QuotaExceeded.is_retryable(),
            "quota rejection only clears when the tenant frees space"
        );
    }

    #[test]
    fn storage_error_maps_to_fs_error() {
        assert_eq!(FsError::from(StorageError::NoSpace), FsError::NoSpace);
        assert!(matches!(
            FsError::from(StorageError::Corrupt("crc mismatch at seq 3".into())),
            FsError::Corrupted(d) if d.contains("bit rot")
        ));
        assert!(matches!(
            FsError::from(StorageError::Wedged),
            FsError::Io(_)
        ));
    }

    #[test]
    fn error_codec_round_trip() {
        let cases = vec![
            FsError::NotFound,
            FsError::AlreadyExists,
            FsError::Invalid("bad name".into()),
            FsError::NotLeader(Some(9)),
            FsError::NotLeader(None),
            FsError::Corrupted("wal seq gap".into()),
            FsError::Loop,
            FsError::WrongShard(0),
            FsError::WrongShard(42),
            FsError::QuotaExceeded,
        ];
        for e in cases {
            let buf = e.to_bytes();
            assert_eq!(FsError::from_bytes(&buf).unwrap(), e);
        }
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NotFound.to_string(), "no such file or directory");
        assert!(FsError::NotLeader(Some(2)).to_string().contains("node 2"));
    }
}

//! Common types shared by every component of the CFS reproduction.
//!
//! This crate defines the vocabulary of the whole system: inode identifiers,
//! the `<kID, kStr>` composite key of TafDB's `inode_table` (paper §4.1),
//! attribute records, errno-style errors, logical timestamps handed out by the
//! timestamp server, and a compact hand-rolled binary codec used for WAL
//! entries and RPC payloads.
//!
//! Nothing in here knows about sharding, networking, or storage — those live
//! in the crates layered on top.

pub mod attr;
pub mod cdc;
pub mod codec;
pub mod error;
pub mod id;
pub mod key;
pub mod record;
pub mod time;

pub use attr::{Attr, FileType};
pub use cdc::CdcEvent;
pub use codec::{Decode, DecodeError, Encode};
pub use error::{FsError, FsResult, StorageError};
pub use id::{BlockId, InodeId, NodeId, ShardId, VolumeId, ROOT_INODE, VOLUME_SHIFT};
pub use key::{KStr, Key};
pub use record::{Cond, FieldAssign, LwwField, NumField, Pred, Record};
pub use time::Timestamp;

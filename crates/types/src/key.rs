//! The `<kID, kStr>` composite primary key of TafDB's `inode_table`.
//!
//! Paper §4.1: every record in the unified `inode_table` is addressed by a
//! pair of the *inode id* component `kID` and a *string* component `kStr`.
//! For directory/file **id records**, `kID` is the parent's inode id and
//! `kStr` is the entry name; for directory **attribute records**, `kID` is the
//! directory's own inode id and `kStr` is the reserved keyword `/_ATTR`.
//!
//! The byte encoding is order-preserving: sorting encoded keys
//! lexicographically equals sorting `(kID, kStr)` pairs, with the attribute
//! record ordered before all child entries of the same directory. This is what
//! lets range partitioning on `kID` co-locate a directory's attribute record
//! with all of its children's id records on one shard.

use std::fmt;

use crate::codec::{Decode, DecodeError, Encode};
use crate::id::InodeId;

/// The string component of the composite key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KStr {
    /// The reserved `/_ATTR` keyword selecting a directory's attribute record.
    Attr,
    /// A directory entry name selecting a child's id record.
    Name(String),
}

impl KStr {
    /// Returns the entry name, or `None` for the attribute keyword.
    pub fn name(&self) -> Option<&str> {
        match self {
            KStr::Attr => None,
            KStr::Name(n) => Some(n),
        }
    }
}

impl fmt::Debug for KStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KStr::Attr => write!(f, "/_ATTR"),
            KStr::Name(n) => write!(f, "{n:?}"),
        }
    }
}

/// Composite primary key `<kID, kStr>` of the `inode_table`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Inode id component: the parent directory for id records, the directory
    /// itself for attribute records.
    pub kid: InodeId,
    /// String component: entry name or the `/_ATTR` keyword.
    pub kstr: KStr,
}

impl Key {
    /// Key of the attribute record of directory `dir`.
    pub fn attr(dir: InodeId) -> Key {
        Key {
            kid: dir,
            kstr: KStr::Attr,
        }
    }

    /// Key of the id record of entry `name` under directory `parent`.
    pub fn entry(parent: InodeId, name: impl Into<String>) -> Key {
        Key {
            kid: parent,
            kstr: KStr::Name(name.into()),
        }
    }

    /// Returns true if this key addresses an attribute record.
    pub fn is_attr(&self) -> bool {
        matches!(self.kstr, KStr::Attr)
    }

    /// Order-preserving byte encoding used as the kvstore key.
    ///
    /// Layout: 8-byte big-endian `kID`, then a tag byte (`0x00` for `/_ATTR`,
    /// `0x01` for names) followed by the raw name bytes. Because the tag byte
    /// precedes the name, the attribute record of a directory sorts before all
    /// of its children, and all keys of one `kID` are contiguous.
    pub fn to_sortable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + self.kstr.name().map_or(0, str::len));
        out.extend_from_slice(&self.kid.raw().to_be_bytes());
        match &self.kstr {
            KStr::Attr => out.push(0x00),
            KStr::Name(n) => {
                out.push(0x01);
                out.extend_from_slice(n.as_bytes());
            }
        }
        out
    }

    /// Decodes a key previously produced by [`Key::to_sortable_bytes`].
    pub fn from_sortable_bytes(bytes: &[u8]) -> Result<Key, DecodeError> {
        if bytes.len() < 9 {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut kid = [0u8; 8];
        kid.copy_from_slice(&bytes[..8]);
        let kid = InodeId(u64::from_be_bytes(kid));
        match bytes[8] {
            0x00 if bytes.len() == 9 => Ok(Key {
                kid,
                kstr: KStr::Attr,
            }),
            0x00 => Err(DecodeError::InvalidTag(0x00)),
            0x01 => {
                let name =
                    std::str::from_utf8(&bytes[9..]).map_err(|_| DecodeError::InvalidUtf8)?;
                Ok(Key::entry(kid, name))
            }
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    /// Inclusive lower bound of the byte range holding every record whose
    /// `kID` equals `dir` (the attribute record plus all children).
    pub fn dir_range_start(dir: InodeId) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&dir.raw().to_be_bytes());
        out
    }

    /// Exclusive upper bound of the byte range of [`Key::dir_range_start`].
    pub fn dir_range_end(dir: InodeId) -> Vec<u8> {
        let mut out = Vec::with_capacity(8);
        out.extend_from_slice(&(dir.raw() + 1).to_be_bytes());
        out
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:?},{:?}>", self.kid, self.kstr)
    }
}

impl Encode for Key {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.kid.encode(buf);
        match &self.kstr {
            KStr::Attr => buf.push(0),
            KStr::Name(n) => {
                buf.push(1);
                n.clone().encode(buf);
            }
        }
    }
}

impl Decode for Key {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        let kid = InodeId::decode(input)?;
        let tag = u8::decode(input)?;
        let kstr = match tag {
            0 => KStr::Attr,
            1 => KStr::Name(String::decode(input)?),
            t => return Err(DecodeError::InvalidTag(t)),
        };
        Ok(Key { kid, kstr })
    }
}

/// Validates a directory entry name per POSIX rules enforced by CFS.
///
/// Rejects empty names, `.` and `..`, embedded `/` and NUL, and names longer
/// than 255 bytes (`NAME_MAX`).
pub fn validate_name(name: &str) -> Result<(), crate::error::FsError> {
    use crate::error::FsError;
    if name.is_empty() {
        return Err(FsError::Invalid("empty name".into()));
    }
    if name == "." || name == ".." {
        return Err(FsError::Invalid(format!("reserved name {name:?}")));
    }
    if name.contains('/') || name.contains('\0') {
        return Err(FsError::Invalid("name contains '/' or NUL".into()));
    }
    if name.len() > 255 {
        return Err(FsError::Invalid("name exceeds NAME_MAX".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn attr_sorts_before_children() {
        let attr = Key::attr(InodeId(7)).to_sortable_bytes();
        let child = Key::entry(InodeId(7), "a").to_sortable_bytes();
        assert!(attr < child);
    }

    #[test]
    fn different_dirs_do_not_interleave() {
        let last_of_7 = Key::entry(InodeId(7), "\u{10FFFF}zzzz").to_sortable_bytes();
        let attr_of_8 = Key::attr(InodeId(8)).to_sortable_bytes();
        assert!(last_of_7 < attr_of_8);
    }

    #[test]
    fn dir_range_covers_exactly_one_kid() {
        let lo = Key::dir_range_start(InodeId(9));
        let hi = Key::dir_range_end(InodeId(9));
        let attr = Key::attr(InodeId(9)).to_sortable_bytes();
        let child = Key::entry(InodeId(9), "zz").to_sortable_bytes();
        let other = Key::attr(InodeId(10)).to_sortable_bytes();
        assert!(lo <= attr && attr < hi);
        assert!(lo <= child && child < hi);
        assert!(other >= hi);
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("hello.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name(".").is_err());
        assert!(validate_name("..").is_err());
        assert!(validate_name("a/b").is_err());
        assert!(validate_name(&"x".repeat(256)).is_err());
        assert!(validate_name(&"x".repeat(255)).is_ok());
    }

    proptest! {
        #[test]
        fn prop_sortable_round_trip(kid: u64, name in "[^/\0]{1,40}") {
            let k = Key::entry(InodeId(kid), name);
            let bytes = k.to_sortable_bytes();
            prop_assert_eq!(Key::from_sortable_bytes(&bytes).unwrap(), k);
        }

        #[test]
        fn prop_sortable_order_matches_logical_order(
            kid1: u64, kid2: u64, n1 in "[^/\0]{1,16}", n2 in "[^/\0]{1,16}"
        ) {
            let k1 = Key::entry(InodeId(kid1), n1);
            let k2 = Key::entry(InodeId(kid2), n2);
            let byte_order = k1.to_sortable_bytes().cmp(&k2.to_sortable_bytes());
            let logical = k1.kid.cmp(&k2.kid).then_with(|| {
                k1.kstr.name().unwrap().as_bytes().cmp(k2.kstr.name().unwrap().as_bytes())
            });
            prop_assert_eq!(byte_order, logical);
        }

        #[test]
        fn prop_codec_round_trip(kid: u64, name in "[^/\0]{0,40}") {
            let k = if name.is_empty() {
                Key::attr(InodeId(kid))
            } else {
                Key::entry(InodeId(kid), name)
            };
            let buf = k.to_bytes();
            prop_assert_eq!(Key::from_bytes(&buf).unwrap(), k);
        }
    }
}

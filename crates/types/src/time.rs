//! Logical timestamps issued by TafDB's time servers.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::{Decode, DecodeError, Encode};

/// A monotonically increasing logical timestamp (paper §3.2, "a group of time
/// servers assigning monotonically increasing timestamps to order metadata
/// transactions").
///
/// Timestamps order last-writer-wins merges of overwrite attributes such as
/// `mtime` and `mode` (paper §4.2). `Timestamp(0)` is the "beginning of time"
/// carried by freshly initialized records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp, ordered before every assigned timestamp.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Returns the raw counter value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts@{}", self.0)
    }
}

impl Encode for Timestamp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for Timestamp {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Timestamp(u64::decode(input)?))
    }
}

/// A process-local monotonic timestamp oracle.
///
/// The distributed deployment wraps this in an RPC service (the TS group of
/// Figure 5); unit tests and single-process setups use it directly.
#[derive(Debug, Default)]
pub struct TimestampOracle {
    next: AtomicU64,
}

impl TimestampOracle {
    /// Creates an oracle whose first issued timestamp is `1`.
    pub fn new() -> Self {
        TimestampOracle {
            next: AtomicU64::new(1),
        }
    }

    /// Issues the next timestamp. Never returns the same value twice and the
    /// sequence is strictly increasing across threads.
    pub fn next(&self) -> Timestamp {
        Timestamp(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Fast-forwards the oracle so the next issued timestamp is strictly
    /// greater than `floor`. Used on recovery so restarted time servers never
    /// reissue timestamps observed before the crash.
    pub fn advance_past(&self, floor: Timestamp) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= floor.0 {
            match self.next.compare_exchange_weak(
                cur,
                floor.0 + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn oracle_is_strictly_increasing() {
        let o = TimestampOracle::new();
        let a = o.next();
        let b = o.next();
        assert!(b > a);
        assert!(a > Timestamp::ZERO);
    }

    #[test]
    fn oracle_unique_across_threads() {
        let o = Arc::new(TimestampOracle::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let o = Arc::clone(&o);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| o.next().raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8 * 1000, "timestamps must be unique");
    }

    #[test]
    fn advance_past_skips_reissued_range() {
        let o = TimestampOracle::new();
        o.advance_past(Timestamp(100));
        assert!(o.next() > Timestamp(100));
        // Advancing backwards is a no-op.
        o.advance_past(Timestamp(5));
        assert!(o.next() > Timestamp(100));
    }
}

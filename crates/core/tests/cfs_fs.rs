//! End-to-end tests of the full CFS stack on a simulated cluster.

use std::sync::Arc;
use std::time::Duration;

use cfs_core::{CfsCluster, CfsConfig, FileSystem};
use cfs_filestore::SetAttrPatch;
use cfs_types::{FileType, FsError};

fn cluster() -> CfsCluster {
    CfsCluster::start(CfsConfig::test_small()).expect("cluster boot")
}

#[test]
fn create_getattr_unlink_lifecycle() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/work").unwrap();
    let ino = fs.create("/work/report.txt").unwrap();
    assert_eq!(fs.lookup("/work/report.txt").unwrap(), ino);
    let attr = fs.getattr("/work/report.txt").unwrap();
    assert_eq!(attr.ino, ino);
    assert_eq!(attr.ftype, FileType::File);
    assert_eq!(attr.size, 0);
    // Parent's children count reflects the create.
    assert_eq!(fs.getattr("/work").unwrap().children, 1);
    fs.unlink("/work/report.txt").unwrap();
    assert_eq!(
        fs.lookup("/work/report.txt").unwrap_err(),
        FsError::NotFound
    );
    assert_eq!(fs.getattr("/work").unwrap().children, 0);
}

#[test]
fn mkdir_rmdir_semantics() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    // Non-empty directory cannot be removed.
    assert_eq!(fs.rmdir("/a").unwrap_err(), FsError::NotEmpty);
    // rmdir on a file is NotDir; unlink on a dir is IsDir.
    fs.create("/a/f").unwrap();
    assert_eq!(fs.rmdir("/a/f").unwrap_err(), FsError::NotDir);
    assert_eq!(fs.unlink("/a/b").unwrap_err(), FsError::IsDir);
    fs.unlink("/a/f").unwrap();
    fs.rmdir("/a/b").unwrap();
    fs.rmdir("/a").unwrap();
    assert_eq!(fs.lookup("/a").unwrap_err(), FsError::NotFound);
}

#[test]
fn duplicate_and_missing_errors() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/d").unwrap();
    fs.create("/d/x").unwrap();
    assert_eq!(fs.create("/d/x").unwrap_err(), FsError::AlreadyExists);
    assert_eq!(fs.mkdir("/d").unwrap_err(), FsError::AlreadyExists);
    assert_eq!(fs.unlink("/d/ghost").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.getattr("/nope/x").unwrap_err(), FsError::NotFound);
    // Path through a file is NotDir.
    assert_eq!(fs.create("/d/x/y").unwrap_err(), FsError::NotDir);
}

#[test]
fn readdir_lists_everything_in_order() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/dir").unwrap();
    for name in ["zz", "aa", "mm"] {
        fs.create(&format!("/dir/{name}")).unwrap();
    }
    fs.mkdir("/dir/sub").unwrap();
    let entries = fs.readdir("/dir").unwrap();
    let names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
    assert_eq!(names, vec!["aa", "mm", "sub", "zz"]);
    assert_eq!(
        entries.iter().filter(|e| e.ftype == FileType::Dir).count(),
        1
    );
}

#[test]
fn setattr_files_and_dirs() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/s").unwrap();
    fs.create("/s/f").unwrap();
    fs.setattr(
        "/s/f",
        SetAttrPatch {
            mode: Some(0o600),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fs.getattr("/s/f").unwrap().mode, 0o600);
    fs.setattr(
        "/s",
        SetAttrPatch {
            mode: Some(0o700),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(fs.getattr("/s").unwrap().mode, 0o700);
}

#[test]
fn fast_path_rename_same_directory() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/r").unwrap();
    let ino = fs.create("/r/old").unwrap();
    fs.rename("/r/old", "/r/new").unwrap();
    assert_eq!(fs.lookup("/r/new").unwrap(), ino);
    assert_eq!(fs.lookup("/r/old").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.getattr("/r").unwrap().children, 1);
}

#[test]
fn fast_path_rename_overwrites_destination() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/r").unwrap();
    let a = fs.create("/r/a").unwrap();
    fs.create("/r/b").unwrap();
    fs.rename("/r/a", "/r/b").unwrap();
    assert_eq!(fs.lookup("/r/b").unwrap(), a);
    assert_eq!(fs.getattr("/r").unwrap().children, 1);
    // The overwritten file's attribute is deleted (asynchronously).
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(fs.getattr("/r/b").unwrap().ino, a);
}

#[test]
fn normal_path_rename_across_directories() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/src").unwrap();
    fs.mkdir("/dst").unwrap();
    let ino = fs.create("/src/file").unwrap();
    fs.rename("/src/file", "/dst/moved").unwrap();
    assert_eq!(fs.lookup("/dst/moved").unwrap(), ino);
    assert_eq!(fs.lookup("/src/file").unwrap_err(), FsError::NotFound);
    assert_eq!(fs.getattr("/src").unwrap().children, 0);
    assert_eq!(fs.getattr("/dst").unwrap().children, 1);
}

#[test]
fn directory_rename_moves_subtree() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/p1").unwrap();
    fs.mkdir("/p2").unwrap();
    fs.mkdir("/p1/sub").unwrap();
    fs.create("/p1/sub/leaf").unwrap();
    fs.rename("/p1/sub", "/p2/sub").unwrap();
    assert!(fs.lookup("/p2/sub/leaf").is_ok());
    assert_eq!(fs.lookup("/p1/sub").unwrap_err(), FsError::NotFound);
    // Link counts moved with the directory.
    assert_eq!(fs.getattr("/p1").unwrap().links, 2);
    assert_eq!(fs.getattr("/p2").unwrap().links, 3);
}

#[test]
fn rename_into_own_subtree_is_rejected() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/top").unwrap();
    fs.mkdir("/top/mid").unwrap();
    fs.mkdir("/top/mid/deep").unwrap();
    // Moving /top under its own descendant would orphan the loop.
    assert_eq!(
        fs.rename("/top", "/top/mid/deep/evil").unwrap_err(),
        FsError::Loop
    );
    // And directly onto a descendant parent.
    assert_eq!(
        fs.rename("/top/mid", "/top/mid/deep/x").unwrap_err(),
        FsError::Loop
    );
    // The hierarchy is intact afterwards.
    assert!(fs.lookup("/top/mid/deep").is_ok());
}

#[test]
fn rename_dir_onto_nonempty_dir_fails() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();
    fs.create("/b/occupied").unwrap();
    assert_eq!(fs.rename("/a", "/b").unwrap_err(), FsError::NotEmpty);
    // Onto an empty dir succeeds.
    fs.unlink("/b/occupied").unwrap();
    fs.rename("/a", "/b").unwrap();
    assert!(fs.lookup("/b").is_ok());
    assert_eq!(fs.lookup("/a").unwrap_err(), FsError::NotFound);
}

#[test]
fn symlink_round_trip() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/links").unwrap();
    fs.create("/links/target").unwrap();
    fs.symlink("/links/target", "/links/alias").unwrap();
    assert_eq!(fs.readlink("/links/alias").unwrap(), "/links/target");
    let attr = fs.getattr("/links/alias").unwrap();
    assert_eq!(attr.ftype, FileType::Symlink);
    fs.unlink("/links/alias").unwrap();
    assert!(fs.lookup("/links/target").is_ok());
}

#[test]
fn data_write_read_round_trip() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/data").unwrap();
    fs.create("/data/blob").unwrap();
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    fs.write("/data/blob", 0, &payload).unwrap();
    assert_eq!(fs.getattr("/data/blob").unwrap().size, payload.len() as u64);
    let got = fs.read("/data/blob", 0, payload.len()).unwrap();
    assert_eq!(got, payload);
    // Partial read at an unaligned offset.
    let got = fs.read("/data/blob", 100_001, 1234).unwrap();
    assert_eq!(got, payload[100_001..100_001 + 1234]);
    // Overwrite in the middle.
    fs.write("/data/blob", 50_000, &[0xAB; 100]).unwrap();
    let got = fs.read("/data/blob", 49_999, 102).unwrap();
    assert_eq!(got[0], payload[49_999]);
    assert!(got[1..101].iter().all(|&b| b == 0xAB));
}

#[test]
fn concurrent_creates_in_shared_directory_are_all_counted() {
    let c = Arc::new(cluster());
    let fs = c.client();
    fs.mkdir("/shared").unwrap();
    let threads = 8;
    let per = 25;
    let mut handles = Vec::new();
    for t in 0..threads {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let fs = c.client();
            for i in 0..per {
                fs.create(&format!("/shared/f-{t}-{i}")).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    // No lost updates: the children counter equals the number of entries
    // (the exact anomaly §3.1 describes is absent despite lock-free merges).
    let attr = fs.getattr("/shared").unwrap();
    assert_eq!(attr.children as usize, threads * per);
    assert_eq!(fs.readdir("/shared").unwrap().len(), threads * per);
}

#[test]
fn gc_reclaims_orphaned_create_attr() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/g").unwrap();
    // Model a client crash between the FileStore and TafDB phases.
    let orphan = fs.create_crash_before_link("/g/ghost").unwrap();
    assert!(fs.filestore().get_attr(orphan).unwrap().is_some());
    // Also perform a healthy create: it must be left alone.
    let live = fs.create("/g/alive").unwrap();
    let gc = c.garbage_collector(Duration::from_millis(100));
    // CDC events propagate through replica apply asynchronously; run cycles
    // until the orphan is collected (bounded).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fs.filestore().get_attr(orphan).unwrap().is_some() {
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned attribute must be collected"
        );
        gc.run_once().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    assert!(fs.filestore().get_attr(live).unwrap().is_some());
    assert_eq!(
        gc.stats()
            .orphan_attrs_removed
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn gc_reclaims_attr_after_crashed_unlink() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/g2").unwrap();
    let ino = fs.create("/g2/doomed").unwrap();
    let gc = c.garbage_collector(Duration::from_millis(100));
    // Settle deterministically: root seeding + mkdir + create produce 5 CDC
    // events (TafPutDirAttr ×2, TafInsertedId ×2, AttrPut); wait until all
    // are ingested, then let the grace period expire and sweep them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while gc
        .stats()
        .events_processed
        .load(std::sync::atomic::Ordering::Relaxed)
        < 5
    {
        assert!(
            std::time::Instant::now() < deadline,
            "cdc events not observed"
        );
        gc.run_once().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(150));
    gc.run_once().unwrap(); // sweep the settled create pairing
                            // Crash after the TafDB unlink but before the FileStore deletion.
    let gone = fs.unlink_crash_before_filestore("/g2/doomed").unwrap();
    assert_eq!(gone, ino);
    assert!(fs.filestore().get_attr(ino).unwrap().is_some());
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fs.filestore().get_attr(ino).unwrap().is_some() {
        assert!(
            std::time::Instant::now() < deadline,
            "stale attribute must be collected after crashed unlink"
        );
        gc.run_once().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
}

#[test]
fn survives_taf_shard_leader_failover() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/ha").unwrap();
    fs.create("/ha/before").unwrap();
    let leader = c.taf_groups()[0].raft().leader().unwrap();
    c.network().kill(leader.id());
    // Operations keep working through the new leader.
    fs.create("/ha/after").unwrap();
    assert!(fs.lookup("/ha/before").is_ok());
    assert!(fs.lookup("/ha/after").is_ok());
}

#[test]
fn rename_same_path_is_noop_and_missing_fails() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/n").unwrap();
    fs.create("/n/f").unwrap();
    fs.rename("/n/f", "/n/f").unwrap();
    assert!(fs.lookup("/n/f").is_ok());
    assert_eq!(
        fs.rename("/n/ghost", "/n/x").unwrap_err(),
        FsError::NotFound
    );
}

#[test]
fn cdc_stream_survives_replica_crash_restart_with_undrained_events() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/gcdc").unwrap();
    // An orphaned attribute (client crash between the FileStore and TafDB
    // phases): only the undrained CDC events can tell the collector that
    // `ghost` has no id record while `alive` does.
    let orphan = fs.create_crash_before_link("/gcdc/ghost").unwrap();
    let live = fs.create("/gcdc/alive").unwrap();

    // Subscribe the collector but do NOT poll yet — every event so far sits
    // undrained in the watched replicas' CDC streams.
    let gc = c.garbage_collector(Duration::from_millis(100));

    // kill −9 the exact replicas the collector watches (replica 0 of every
    // TafDB group) and rebuild them from snapshot + log. The CDC stream is
    // machine-local state that must survive the process kill: undrained
    // events stay available and log replay must not re-emit duplicates.
    for g in c.taf_groups() {
        let id = g.raft().nodes()[0].id();
        c.crash_node(id).expect("crash watched replica");
        c.restart_node(id).expect("rebuild watched replica");
    }
    for g in c.taf_groups() {
        g.raft()
            .wait_quiescent(Duration::from_secs(10))
            .expect("taf quiesce after rebuild");
    }

    // Post-rebuild mutations must keep flowing into the same stream.
    let after = fs.create("/gcdc/after").unwrap();

    // The orphan is still collected from the pre-crash events...
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while fs.filestore().get_attr(orphan).unwrap().is_some() {
        assert!(
            std::time::Instant::now() < deadline,
            "orphan not collected: CDC events were lost across the rebuild"
        );
        gc.run_once().unwrap();
        std::thread::sleep(Duration::from_millis(60));
    }
    // ...while both healthy files survive: their id-record events were
    // neither lost (which would orphan them) nor double-emitted.
    std::thread::sleep(Duration::from_millis(150));
    gc.run_once().unwrap();
    assert!(fs.filestore().get_attr(live).unwrap().is_some());
    assert!(fs.filestore().get_attr(after).unwrap().is_some());
    fs.lookup("/gcdc/alive").unwrap();
    fs.lookup("/gcdc/after").unwrap();
}

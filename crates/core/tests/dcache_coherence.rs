//! Dentry-cache coherence across clients: negative entries must not mask
//! another client's create, and mutating ops must bump the parent
//! directory's generation so piggybacked observations invalidate stale
//! state.

use cfs_core::{CfsCluster, CfsConfig, FileSystem};
use cfs_tafdb::{ReadConsistency, ResolveEnd};
use cfs_types::{FsError, InodeId};

fn cluster() -> CfsCluster {
    CfsCluster::start(CfsConfig::test_small()).expect("cluster boot")
}

/// Reads `dir`'s current generation off its shard by resolving a name that
/// cannot exist: the NotFound response piggybacks the generation.
fn probe_gen(fs: &cfs_core::CfsClient, dir: InodeId) -> u64 {
    let r = fs
        .taf()
        .resolve_prefix(dir, &["__gen_probe__".to_string()])
        .expect("probe resolve");
    match r.end {
        ResolveEnd::Err {
            err: FsError::NotFound,
            gen,
        } => gen,
        other => panic!("probe expected NotFound, got {other:?}"),
    }
}

#[test]
fn negative_entry_does_not_mask_another_clients_create() {
    let c = cluster();
    let a = c.client();
    let b = c.client();
    a.mkdir("/d").unwrap();
    // Client a caches and arms a negative entry for /d/x: the first miss
    // inserts it, the second revalidation confirms the generation.
    assert_eq!(a.lookup("/d/x").unwrap_err(), FsError::NotFound);
    assert_eq!(a.lookup("/d/x").unwrap_err(), FsError::NotFound);
    // Another client creates the file, bumping /d's generation.
    let ino = b.create("/d/x").unwrap();
    // a may serve at most one armed local "not found"; serving it consumes
    // the confirmation, so the next lookup revalidates at the shard and
    // must see b's create.
    let _ = a.lookup("/d/x");
    assert_eq!(a.lookup("/d/x").unwrap(), ino);
    // And the positive result sticks from here on.
    assert_eq!(a.lookup("/d/x").unwrap(), ino);
}

#[test]
fn sibling_response_invalidates_stale_negative() {
    let c = cluster();
    let a = c.client();
    let b = c.client();
    a.mkdir("/d").unwrap();
    // Arm a negative for /d/x on client a.
    assert_eq!(a.lookup("/d/x").unwrap_err(), FsError::NotFound);
    assert_eq!(a.lookup("/d/x").unwrap_err(), FsError::NotFound);
    let ino = b.create("/d/x").unwrap();
    // Resolving any *other* name in /d piggybacks the bumped generation and
    // drops the directory's cached entries — including the stale negative.
    assert_eq!(a.lookup("/d/y").unwrap_err(), FsError::NotFound);
    assert_eq!(a.lookup("/d/x").unwrap(), ino);
}

#[test]
fn rename_and_unlink_bump_parent_generation() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/d").unwrap();
    let d = fs.lookup("/d").unwrap();
    fs.create("/d/f1").unwrap();
    let g0 = probe_gen(&fs, d);
    fs.rename("/d/f1", "/d/f2").unwrap();
    let g1 = probe_gen(&fs, d);
    assert!(
        g1 > g0,
        "rename must bump the parent generation ({g0}->{g1})"
    );
    fs.unlink("/d/f2").unwrap();
    let g2 = probe_gen(&fs, d);
    assert!(
        g2 > g1,
        "unlink must bump the parent generation ({g1}->{g2})"
    );
}

#[test]
fn unlink_by_another_client_is_seen_after_generation_observation() {
    let c = cluster();
    let a = c.client();
    let b = c.client();
    a.mkdir("/d").unwrap();
    let ino = a.create("/d/f").unwrap();
    assert_eq!(a.lookup("/d/f").unwrap(), ino);
    b.unlink("/d/f").unwrap();
    // A response for any name in /d carries the new generation; after that
    // the file entry must not be served from a's cache.
    assert_eq!(a.lookup("/d/other").unwrap_err(), FsError::NotFound);
    assert_eq!(a.lookup("/d/f").unwrap_err(), FsError::NotFound);
}

#[test]
fn read_index_clients_run_the_full_lifecycle() {
    let mut cfg = CfsConfig::test_small();
    cfg.read_consistency = ReadConsistency::ReadIndex;
    let c = CfsCluster::start(cfg).expect("cluster boot");
    let fs = c.client();
    fs.mkdir("/ri").unwrap();
    let ino = fs.create("/ri/f").unwrap();
    // Reads route through follower replicas with a freshness proof; the
    // client must still see its own writes immediately.
    assert_eq!(fs.lookup("/ri/f").unwrap(), ino);
    assert_eq!(fs.getattr("/ri/f").unwrap().ino, ino);
    let names: Vec<String> = fs
        .readdir("/ri")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    assert_eq!(names, vec!["f".to_string()]);
    fs.unlink("/ri/f").unwrap();
    assert_eq!(fs.lookup("/ri/f").unwrap_err(), FsError::NotFound);
    fs.rmdir("/ri").unwrap();
}

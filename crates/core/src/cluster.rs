//! Full-cluster assembly: one call boots the whole Figure 5 deployment.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cfs_filestore::{FileStoreClient, FileStoreGroup, FileStoreLayout};
use cfs_kvstore::KvConfig;
use cfs_placement::{PlacementClient, PlacementDriver, SplitStats};
use cfs_raft::RaftConfig;
use cfs_renamer::{RenamerClient, RenamerService};
use cfs_rpc::{NetConfig, Network};
use cfs_tafdb::router::{PartitionMap, ShardInfo};
use cfs_tafdb::{ReadConsistency, TafBackendGroup, TafDbClient, TimeService, TsClient};
use cfs_types::{FsError, FsResult, NodeId, Record, ShardId, Timestamp, VolumeId, ROOT_INODE};
use cfs_volume::{QosConfig, QosLimiter, VolumeRegistry};
use parking_lot::RwLock;

use crate::client::CfsClient;
use crate::gc::GarbageCollector;

/// Node-id layout of the simulated cluster.
const TS_NODE: NodeId = NodeId(1);
const RENAMER_NODE: NodeId = NodeId(2);
/// The placement driver's service address (map fetches).
const PLACEMENT_NODE: NodeId = NodeId(3);
/// Source address of the driver's shard-control RPCs.
const PLACEMENT_CTL_NODE: NodeId = NodeId(4);
const TAF_BASE: u32 = 100;
const FS_BASE: u32 = 10_000;
const CLIENT_BASE: u32 = 1_000_000;

/// Deployment configuration.
#[derive(Clone, Debug)]
pub struct CfsConfig {
    /// Number of TafDB shards (each a Raft group).
    pub taf_shards: usize,
    /// Number of logical FileStore nodes (each a Raft group).
    pub filestore_nodes: usize,
    /// Replication degree of every group (the paper deploys 3).
    pub replication: usize,
    /// Raft timing.
    pub raft: RaftConfig,
    /// Storage engine tuning for shards and attribute stores.
    pub kv: KvConfig,
    /// Network simulation parameters.
    pub net: NetConfig,
    /// Which replicas serve client reads: the leader only (default), or any
    /// replica after a ReadIndex freshness proof.
    pub read_consistency: ReadConsistency,
    /// Data block size in bytes.
    pub block_size: u64,
    /// Timestamp block fetched per TS RPC.
    pub ts_block: u32,
    /// Inode-id block fetched per TS RPC.
    pub id_block: u32,
}

impl Default for CfsConfig {
    fn default() -> Self {
        CfsConfig {
            taf_shards: 4,
            filestore_nodes: 4,
            replication: 3,
            raft: RaftConfig {
                election_timeout_min: Duration::from_millis(100),
                election_timeout_max: Duration::from_millis(250),
                heartbeat_interval: Duration::from_millis(25),
                snapshot_threshold: 256,
                ..Default::default()
            },
            kv: KvConfig::default(),
            net: NetConfig::default(),
            read_consistency: ReadConsistency::default(),
            block_size: 64 * 1024,
            ts_block: 1,
            id_block: 64,
        }
    }
}

impl CfsConfig {
    /// A small, fast-booting configuration for tests.
    pub fn test_small() -> CfsConfig {
        CfsConfig {
            taf_shards: 2,
            filestore_nodes: 2,
            replication: 3,
            raft: RaftConfig {
                election_timeout_min: Duration::from_millis(50),
                election_timeout_max: Duration::from_millis(120),
                heartbeat_interval: Duration::from_millis(15),
                // Low enough that nemesis-length runs actually compact.
                snapshot_threshold: 48,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// A fully wired CFS deployment on a simulated network.
pub struct CfsCluster {
    config: CfsConfig,
    net: Arc<Network>,
    pmap: Arc<PartitionMap>,
    fs_layout: Arc<FileStoreLayout>,
    taf_groups: RwLock<Vec<Arc<TafBackendGroup>>>,
    fs_groups: Vec<FileStoreGroup>,
    driver: Arc<PlacementDriver>,
    qos: Arc<QosLimiter>,
    _time_service: Arc<TimeService>,
    _renamer: Arc<RenamerService>,
    next_client: AtomicU32,
    /// First unused TafDB replica node id (split receivers allocate here).
    next_taf_node: AtomicU32,
    /// First unused shard id.
    next_shard_id: AtomicU32,
}

impl CfsCluster {
    /// Boots the whole deployment and waits for every group to elect.
    pub fn start(config: CfsConfig) -> FsResult<CfsCluster> {
        let net = Network::new(config.net.clone());

        // Partition map over the TafDB shards.
        let shard_infos: Vec<ShardInfo> = (0..config.taf_shards)
            .map(|s| ShardInfo {
                id: ShardId(s as u32),
                replicas: (0..config.replication)
                    .map(|r| NodeId(TAF_BASE + (s * config.replication + r) as u32))
                    .collect(),
            })
            .collect();
        let pmap = Arc::new(PartitionMap::new(shard_infos.clone()));

        // Placement driver: owns the authoritative map and serves it to
        // clients chasing `WrongShard` redirects.
        let driver = PlacementDriver::new(
            Arc::clone(&net),
            PLACEMENT_NODE,
            PLACEMENT_CTL_NODE,
            Arc::clone(&pmap),
        );

        // TS service.
        let time_service = TimeService::new(Arc::clone(&pmap));
        time_service.register(&net, TS_NODE);

        // TafDB backend groups.
        let mut taf_groups = Vec::new();
        for info in &shard_infos {
            taf_groups.push(Arc::new(TafBackendGroup::spawn(
                &net,
                info.id,
                &info.replicas,
                config.raft.clone(),
                config.kv.clone(),
            )));
        }

        // FileStore groups.
        let mut fs_groups = Vec::new();
        let mut fs_nodes = Vec::new();
        for n in 0..config.filestore_nodes {
            let ids: Vec<NodeId> = (0..config.replication)
                .map(|r| NodeId(FS_BASE + (n * config.replication + r) as u32))
                .collect();
            fs_nodes.push(ids.clone());
            fs_groups.push(FileStoreGroup::spawn(
                &net,
                &ids,
                config.raft.clone(),
                config.kv.clone(),
            ));
        }
        let fs_layout = Arc::new(FileStoreLayout::new(fs_nodes));

        for g in &taf_groups {
            g.wait_ready(Duration::from_secs(30))?;
        }
        for g in &fs_groups {
            g.wait_ready(Duration::from_secs(30))?;
        }

        // Seed the root directory (parent pointer = itself).
        let boot_taf = TafDbClient::new(Arc::clone(&net), NodeId(90), Arc::clone(&pmap));
        let mut root = Record::dir_attr_record(0, Timestamp(0));
        root.id = Some(ROOT_INODE);
        boot_taf.put(cfs_types::Key::attr(ROOT_INODE), root)?;
        // Seed the volume registry's counter record (kid 0 on shard 0) so
        // concurrent `create` calls race only on the CAS, never on init.
        VolumeRegistry::new(boot_taf).ensure_init()?;

        // Renamer coordinator with its own component clients.
        let renamer = RenamerService::new(
            TafDbClient::new(Arc::clone(&net), NodeId(91), Arc::clone(&pmap)),
            FileStoreClient::new(Arc::clone(&net), NodeId(92), Arc::clone(&fs_layout)),
            TsClient::new(
                Arc::clone(&net),
                NodeId(93),
                TS_NODE,
                config.ts_block,
                config.id_block,
            ),
        );
        renamer.register(&net, RENAMER_NODE);

        let next_taf_node =
            AtomicU32::new(TAF_BASE + (config.taf_shards * config.replication) as u32);
        let next_shard_id = AtomicU32::new(config.taf_shards as u32);
        Ok(CfsCluster {
            config,
            net,
            pmap,
            fs_layout,
            taf_groups: RwLock::new(taf_groups),
            fs_groups,
            driver,
            qos: Arc::new(QosLimiter::new(QosConfig::default())),
            _time_service: time_service,
            _renamer: renamer,
            next_client: AtomicU32::new(CLIENT_BASE),
            next_taf_node,
            next_shard_id,
        })
    }

    /// The simulated network (fault injection, stats).
    pub fn network(&self) -> &Arc<Network> {
        &self.net
    }

    /// The deployment configuration.
    pub fn config(&self) -> &CfsConfig {
        &self.config
    }

    /// The TafDB backend groups (metrics, fault injection). The set grows
    /// when [`CfsCluster::split_shard`] adds receivers, so a snapshot is
    /// returned rather than a borrow.
    pub fn taf_groups(&self) -> Vec<Arc<TafBackendGroup>> {
        self.taf_groups.read().clone()
    }

    /// The placement driver (authoritative map, split orchestration).
    pub fn placement(&self) -> &Arc<PlacementDriver> {
        &self.driver
    }

    /// Splits `src` online at its median occupied kid: spawns a fresh Raft
    /// group on new node ids, streams the upper half of the range into it
    /// under live load, and cuts the partition map over to the next epoch.
    /// On failure the donor resumes normal service and the partial receiver
    /// is torn down.
    pub fn split_shard(&self, src: ShardId) -> FsResult<SplitStats> {
        self.split_shard_inner(src, None)
    }

    /// Like [`CfsCluster::split_shard`] but at an explicit key. Splitting a
    /// shard at [`VolumeId::band_start`] gives that volume its own Raft
    /// group — the scale-out lever for a hot tenant.
    pub fn split_shard_at(&self, src: ShardId, at: u64) -> FsResult<SplitStats> {
        self.split_shard_inner(src, Some(at))
    }

    fn split_shard_inner(&self, src: ShardId, at: Option<u64>) -> FsResult<SplitStats> {
        let id = ShardId(self.next_shard_id.fetch_add(1, Ordering::Relaxed));
        let base = self
            .next_taf_node
            .fetch_add(self.config.replication as u32, Ordering::Relaxed);
        assert!(
            base + self.config.replication as u32 <= FS_BASE,
            "TafDB node ids exhausted"
        );
        let replicas: Vec<NodeId> = (0..self.config.replication as u32)
            .map(|r| NodeId(base + r))
            .collect();
        let info = ShardInfo { id, replicas };
        let group = Arc::new(TafBackendGroup::spawn(
            &self.net,
            info.id,
            &info.replicas,
            self.config.raft.clone(),
            self.config.kv.clone(),
        ));
        group.wait_ready(Duration::from_secs(30))?;
        match self.driver.split(src, at, info) {
            Ok(stats) => {
                self.taf_groups.write().push(group);
                Ok(stats)
            }
            Err(e) => {
                // The receiver may hold a partial copy: discard it.
                group.shutdown();
                Err(e)
            }
        }
    }

    /// The FileStore groups.
    pub fn fs_groups(&self) -> &[FileStoreGroup] {
        &self.fs_groups
    }

    /// Simulates kill −9 of the TafDB replica at `id`: the node object and
    /// every piece of in-flight state it held (proposals, ReadIndex rounds,
    /// lock-manager waits) are dropped; only its durable [`cfs_raft::RaftStorage`]
    /// survives, playing the disk.
    pub fn crash_node(&self, id: NodeId) -> FsResult<()> {
        let (g, i) = self.find_taf_replica(id)?;
        g.crash_replica(i);
        Ok(())
    }

    /// Brings a crashed TafDB replica back from WAL + snapshot: a fresh
    /// state machine is restored from the persisted image and log tail,
    /// registry gauges are re-derived, services are remounted, and the
    /// replica rejoins its Raft group.
    pub fn restart_node(&self, id: NodeId) -> FsResult<()> {
        let (g, i) = self.find_taf_replica(id)?;
        g.restart_replica(i);
        Ok(())
    }

    /// Caps the bytes the replica at `id` (TafDB or FileStore) can still
    /// write to its log volume before `ENOSPC` (`None` lifts the cap): the
    /// `disk_full` nemesis fault.
    pub fn set_disk_budget(&self, id: NodeId, budget: Option<u64>) -> FsResult<()> {
        if let Some(f) = self.replica_faults(id)? {
            f.set_byte_budget(budget);
        }
        Ok(())
    }

    /// Arms a one-shot torn write on the replica at `id`'s log volume
    /// (the device wedges after the tear; pair with [`CfsCluster::crash_node`]).
    pub fn arm_torn_write(&self, id: NodeId, ppm: u32) -> FsResult<()> {
        if let Some(f) = self.replica_faults(id)? {
            f.arm_torn_write(ppm);
        }
        Ok(())
    }

    /// Heals the replica at `id`'s simulated log volume (lifts the byte
    /// budget, disarms tears and bit-rot, un-wedges).
    pub fn clear_storage_faults(&self, id: NodeId) -> FsResult<()> {
        if let Some(f) = self.replica_faults(id)? {
            f.clear();
        }
        Ok(())
    }

    /// The simulated storage device under the replica at `id`'s log volume,
    /// looked up across TafDB and FileStore groups alike.
    pub fn replica_faults(&self, id: NodeId) -> FsResult<Option<Arc<cfs_wal::FaultFs>>> {
        if let Ok((g, i)) = self.find_taf_replica(id) {
            return Ok(g.replica_faults(i));
        }
        for g in &self.fs_groups {
            if let Some(i) = g.raft().nodes().iter().position(|n| n.id() == id) {
                return Ok(g.replica_faults(i));
            }
        }
        Err(FsError::Invalid(format!("no replica at node {}", id.0)))
    }

    fn find_taf_replica(&self, id: NodeId) -> FsResult<(Arc<TafBackendGroup>, usize)> {
        for g in self.taf_groups.read().iter() {
            if let Some(i) = g.raft().nodes().iter().position(|n| n.id() == id) {
                return Ok((Arc::clone(g), i));
            }
        }
        Err(FsError::Invalid(format!(
            "no TafDB replica at node {}",
            id.0
        )))
    }

    /// Creates a new client with a unique address. Each client caches its
    /// own copy of the partition map and refreshes it from the placement
    /// driver when a shard answers `WrongShard` — the lazy client-side half
    /// of the scale-out protocol.
    pub fn client(&self) -> CfsClient {
        self.client_with_consistency(self.config.read_consistency)
    }

    /// Like [`CfsCluster::client`], but with an explicit read consistency —
    /// benches compare `LeaderOnly` and `ReadIndex` clients side by side on
    /// one cluster.
    pub fn client_with_consistency(&self, consistency: ReadConsistency) -> CfsClient {
        let me = NodeId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let client_map = Arc::new(PartitionMap::from_version(self.pmap.current_version()));
        let taf = TafDbClient::new(Arc::clone(&self.net), me, client_map)
            .with_consistency(consistency)
            .with_map_source(Arc::new(PlacementClient::new(
                Arc::clone(&self.net),
                me,
                PLACEMENT_NODE,
            )));
        CfsClient::new(
            taf,
            FileStoreClient::new(Arc::clone(&self.net), me, Arc::clone(&self.fs_layout)),
            TsClient::new(
                Arc::clone(&self.net),
                me,
                TS_NODE,
                self.config.ts_block,
                self.config.id_block,
            ),
            RenamerClient::new(Arc::clone(&self.net), me, RENAMER_NODE),
            self.config.block_size,
        )
    }

    /// The cluster-wide QoS fair-share limiter shared by every client built
    /// through [`CfsCluster::client_for_volume`]. Override a tenant's share
    /// with [`QosLimiter::set_rate`].
    pub fn qos(&self) -> &Arc<QosLimiter> {
        &self.qos
    }

    /// A handle on the volume registry: create/list/delete volumes and
    /// inspect per-tenant quota usage.
    pub fn volumes(&self) -> VolumeRegistry {
        let me = NodeId(self.next_client.fetch_add(1, Ordering::Relaxed));
        VolumeRegistry::new(TafDbClient::new(
            Arc::clone(&self.net),
            me,
            Arc::clone(&self.pmap),
        ))
    }

    /// A client mounted on `vol`: paths resolve from the volume root, new
    /// inodes land in the volume's id band, quota charges apply, and every
    /// operation passes the shared QoS limiter.
    pub fn client_for_volume(&self, vol: VolumeId) -> CfsClient {
        self.client_with_consistency(self.config.read_consistency)
            .with_volume(vol)
            .with_qos(Arc::clone(&self.qos))
    }

    /// Like [`CfsCluster::client_for_volume`] but without QoS admission —
    /// the "QoS off" arm of the tenant-interference experiment.
    pub fn client_for_volume_unlimited(&self, vol: VolumeId) -> CfsClient {
        self.client_with_consistency(self.config.read_consistency)
            .with_volume(vol)
    }

    /// Builds the garbage collector wired to every component's change stream
    /// (watching replica 0 of each group, which applies all committed
    /// commands regardless of leadership).
    ///
    /// Watchers cover the groups alive at call time; build the collector
    /// after any planned [`CfsCluster::split_shard`] calls. (Split receivers
    /// ingest moved keys without CDC events, so tombstone grace tracking is
    /// unaffected by the migration itself.)
    pub fn garbage_collector(&self, grace: Duration) -> GarbageCollector {
        let taf_watchers = self
            .taf_groups
            .read()
            .iter()
            .map(|g| g.raft().nodes()[0].state_machine().cdc().watch_from_start())
            .collect();
        let fs_watchers = self
            .fs_groups
            .iter()
            .map(|g| g.raft().nodes()[0].state_machine().cdc().watch_from_start())
            .collect();
        let me = NodeId(self.next_client.fetch_add(1, Ordering::Relaxed));
        GarbageCollector::new(
            taf_watchers,
            fs_watchers,
            TafDbClient::new(Arc::clone(&self.net), me, Arc::clone(&self.pmap)),
            FileStoreClient::new(Arc::clone(&self.net), me, Arc::clone(&self.fs_layout)),
            grace,
        )
    }

    /// Stops every Raft group.
    pub fn shutdown(&self) {
        for g in self.taf_groups.read().iter() {
            g.shutdown();
        }
        for g in &self.fs_groups {
            g.shutdown();
        }
    }
}

impl Drop for CfsCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

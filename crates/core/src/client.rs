//! ClientLib — CFS' client library with client-side metadata resolving.
//!
//! Paper §3.2: "the entrance to CFS is ClientLib ... As ClientLib caches the
//! partition information of TafDB and FileStore, it implements a client-side
//! metadata resolving, and directly interacts with the different components
//! of CFS ... there are three paths from ClientLib to the rest of CFS: file
//! data and attribute requests sent to FileStore, complex rename requests
//! forwarded to Renamer, and the remaining ones posted to TafDB."

use std::sync::Arc;

use cfs_filestore::{FileStoreClient, SetAttrPatch};
use cfs_renamer::{RenameRequest, RenamerClient};
use cfs_tafdb::primitive::{PrimResult, Primitive, UpdateSpec};
use cfs_tafdb::{ResolveEnd, TafDbClient, TsClient};
use cfs_types::record::{LwwField, NumField, Pred};
use cfs_types::{
    Attr, BlockId, Cond, FieldAssign, FileType, FsError, FsResult, InodeId, Key, Record, Timestamp,
    VolumeId, ROOT_INODE,
};
use cfs_volume::QosLimiter;
use crossbeam::channel::{unbounded, Sender};

use cfs_obs::trace;

use crate::dcache::{CacheLookup, DentryCache};
use crate::fsapi::{DirEntryInfo, FileSystem};
use crate::path;

/// Page size used by `readdir` scans.
const READDIR_PAGE: u32 = 1024;

/// Asynchronous write-back work (paper §5.2: unlink's FileStore deletion is
/// asynchronous, hiding its latency).
enum Writeback {
    DeleteFile(InodeId),
    Stop,
}

/// The CFS client: implements [`FileSystem`] against a running cluster.
pub struct CfsClient {
    taf: TafDbClient,
    fs: Arc<FileStoreClient>,
    ts: TsClient,
    renamer: RenamerClient,
    /// Versioned dentry cache: positive and negative `(parent, name)`
    /// results, invalidated by per-directory generations piggybacked on
    /// resolve responses.
    dcache: DentryCache,
    block_size: u64,
    /// The volume this client operates in; paths are volume-relative and
    /// resolution starts at the volume's root inode.
    volume: VolumeId,
    root: InodeId,
    /// Per-tenant fair-share admission, shared by every client of a cluster.
    /// `None` = QoS off (no admission control).
    qos: Option<Arc<QosLimiter>>,
    writeback_tx: Sender<Writeback>,
    writeback_thread: Option<std::thread::JoinHandle<()>>,
}

impl CfsClient {
    /// Assembles a client from component handles (normally via
    /// [`crate::cluster::CfsCluster::client`]).
    pub fn new(
        taf: TafDbClient,
        fs: FileStoreClient,
        ts: TsClient,
        renamer: RenamerClient,
        block_size: u64,
    ) -> CfsClient {
        let fs = Arc::new(fs);
        let (tx, rx) = unbounded::<Writeback>();
        let fs_bg = Arc::clone(&fs);
        let writeback_thread = std::thread::Builder::new()
            .name("cfs-writeback".into())
            .spawn(move || {
                while let Ok(op) = rx.recv() {
                    match op {
                        Writeback::DeleteFile(ino) => {
                            let _ = fs_bg.delete_file(ino);
                        }
                        Writeback::Stop => return,
                    }
                }
            })
            .expect("spawn writeback thread");
        CfsClient {
            taf,
            fs,
            ts,
            renamer,
            dcache: DentryCache::new(crate::dcache::DEFAULT_CAPACITY),
            block_size,
            volume: VolumeId::DEFAULT,
            root: ROOT_INODE,
            qos: None,
            writeback_tx: tx,
            writeback_thread: Some(writeback_thread),
        }
    }

    /// Scopes this client to `vol`: paths resolve from the volume's root,
    /// new inodes are allocated inside the volume's id band, and namespace
    /// mutations charge the volume's quota record.
    pub fn with_volume(mut self, vol: VolumeId) -> CfsClient {
        self.volume = vol;
        self.root = vol.root_inode();
        self
    }

    /// Attaches the cluster-shared QoS limiter: every operation passes
    /// fair-share admission for this client's volume before issuing RPCs.
    pub fn with_qos(mut self, qos: Arc<QosLimiter>) -> CfsClient {
        self.qos = Some(qos);
        self
    }

    /// The volume this client operates in.
    pub fn volume(&self) -> VolumeId {
        self.volume
    }

    /// QoS fair-share admission for one operation (no-op with QoS off).
    fn admit(&self) -> FsResult<()> {
        match &self.qos {
            Some(q) => q.admit(self.volume),
            None => Ok(()),
        }
    }

    /// Direct access to the TafDB client (GC, tests).
    pub fn taf(&self) -> &TafDbClient {
        &self.taf
    }

    /// Direct access to the FileStore client (GC, tests).
    pub fn filestore(&self) -> &FileStoreClient {
        &self.fs
    }

    /// Direct access to the TS client.
    pub fn ts(&self) -> &TsClient {
        &self.ts
    }

    /// Opens the observability scope for one [`FileSystem`] operation: a
    /// fresh trace rooted at this client's node. Every hop the operation
    /// takes (TafDB shard, Raft commit, FileStore) nests under it via the
    /// rpc-envelope context propagation.
    fn op_scope(&self, name: &'static str) -> (trace::NodeScope, trace::SpanGuard) {
        let node = trace::node_scope(self.taf.node().0 as u64);
        let span = trace::root_span(name);
        (node, span)
    }

    // ---- resolution -----------------------------------------------------

    fn cache_forget(&self, parent: InodeId, name: &str) {
        self.dcache.forget(parent, name);
    }

    /// The dentry cache (tests).
    #[doc(hidden)]
    pub fn dcache(&self) -> &DentryCache {
        &self.dcache
    }

    /// Resolves `comps` starting at directory `start`: the pruned read path.
    ///
    /// The longest cached prefix is walked locally, then the remainder is
    /// resolved with one batched `ResolvePrefix` RPC per shard touched — the
    /// server walks every component resident on it in a single call and
    /// hands back a cursor when the chain leaves its range. Every response
    /// piggybacks the visited directories' generations, which both fills the
    /// dentry cache and invalidates it when another client mutated a
    /// directory on the way.
    ///
    /// Returns the final component's `(ino, type)`; intermediate components
    /// must be directories, the final one may be anything.
    fn walk(&self, start: InodeId, comps: &[&str]) -> FsResult<(InodeId, FileType)> {
        let mut cur = start;
        let mut cur_type = FileType::Dir;
        let mut i = 0;
        // Greedy local walk over the cached prefix.
        while i < comps.len() {
            match self.dcache.lookup(cur, comps[i]) {
                CacheLookup::Hit(ino, ftype) => {
                    if i + 1 < comps.len() && ftype != FileType::Dir {
                        return Err(FsError::NotDir);
                    }
                    cur = ino;
                    cur_type = ftype;
                    i += 1;
                }
                CacheLookup::Negative => return Err(FsError::NotFound),
                CacheLookup::Miss => break,
            }
        }
        // Server walk: one RPC per shard holding a run of the chain.
        while i < comps.len() {
            let rest: Vec<String> = comps[i..].iter().map(|c| (*c).to_string()).collect();
            let resolved = self.taf.resolve_prefix(cur, &rest)?;
            let made_progress = !resolved.steps.is_empty();
            for step in &resolved.steps {
                self.dcache.observe_gen(cur, step.gen);
                if step.ftype == FileType::Dir {
                    self.dcache
                        .insert(cur, comps[i], step.gen, Some((step.ino, step.ftype)));
                }
                cur = step.ino;
                cur_type = step.ftype;
                i += 1;
            }
            match resolved.end {
                ResolveEnd::Done => {}
                ResolveEnd::Continue => {
                    // The shard guarantees at least one step before a
                    // cursor; guard against a lying server rather than spin.
                    if !made_progress {
                        return Err(FsError::Corrupted("resolve cursor made no progress".into()));
                    }
                }
                ResolveEnd::Err { err, gen } => {
                    // `cur` is the directory the failing component was
                    // searched in (for `NotDir` it is the offending
                    // non-directory itself, whose entries we never cache).
                    if matches!(err, FsError::NotFound) {
                        self.dcache.observe_gen(cur, gen);
                        self.dcache.insert(cur, comps[i], gen, None);
                    }
                    return Err(err);
                }
            }
        }
        Ok((cur, cur_type))
    }

    /// Resolves one entry, consulting the cache first.
    fn resolve_entry(&self, parent: InodeId, name: &str) -> FsResult<(InodeId, FileType)> {
        self.walk(parent, &[name])
    }

    /// Resolves a full path to its final `(ino, type)`. Paths are relative
    /// to this client's volume root.
    fn resolve_path(&self, comps: &[&str]) -> FsResult<(InodeId, FileType)> {
        self.walk(self.root, comps)
    }

    /// Walks directory components to the containing directory's inode.
    fn resolve_dir(&self, comps: &[&str]) -> FsResult<InodeId> {
        let (ino, ftype) = self.walk(self.root, comps)?;
        if ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        Ok(ino)
    }

    fn resolve_parent_of(&self, p: &str) -> FsResult<(InodeId, String)> {
        let (parents, name) = path::split_parent(p)?;
        Ok((self.resolve_dir(&parents)?, name.to_string()))
    }

    // ---- primitive builders ----------------------------------------------

    fn parent_update(
        parent: InodeId,
        children_delta: i64,
        links_delta: i64,
        now: u64,
        ts: Timestamp,
    ) -> UpdateSpec {
        let mut assigns = vec![
            FieldAssign::Set {
                field: LwwField::Mtime,
                value: now,
                ts,
            },
            FieldAssign::Set {
                field: LwwField::Ctime,
                value: now,
                ts,
            },
        ];
        if children_delta != 0 {
            assigns.push(FieldAssign::Delta {
                field: NumField::Children,
                delta: children_delta,
            });
        }
        if links_delta != 0 {
            assigns.push(FieldAssign::Delta {
                field: NumField::Links,
                delta: links_delta,
            });
        }
        UpdateSpec::new(
            Cond::require(Key::attr(parent), vec![Pred::TypeIs(FileType::Dir)]),
            assigns,
        )
    }

    fn insert_entry_prim(
        parent: InodeId,
        name: &str,
        rec: Record,
        links_delta: i64,
        now: u64,
        ts: Timestamp,
    ) -> Primitive {
        Primitive::insert_with_update(
            Key::entry(parent, name),
            rec,
            Self::parent_update(parent, 1, links_delta, now, ts),
        )
    }

    // ---- volume quota ----------------------------------------------------

    /// Whether namespace mutations are metered against a quota record.
    /// The default volume is unmetered (no quota record is seeded for it).
    fn metered(&self) -> bool {
        self.volume != VolumeId::DEFAULT
    }

    /// The quota clause charging (positive) or releasing (negative) usage.
    /// Charges carry the admission predicate so the shard rejects the whole
    /// primitive with `QuotaExceeded` when the volume is out of room;
    /// releases apply unconditionally. `if_exist` makes a missing quota
    /// record mean "unmetered".
    fn quota_spec(&self, inodes: i64, bytes: i64) -> UpdateSpec {
        let quota_key = Key::attr(self.volume.quota_kid());
        let preds = if inodes > 0 || bytes > 0 {
            vec![Pred::QuotaHasRoom { inodes, bytes }]
        } else {
            Vec::new()
        };
        let mut assigns = Vec::new();
        if inodes != 0 {
            assigns.push(FieldAssign::Delta {
                field: NumField::Links,
                delta: inodes,
            });
        }
        if bytes != 0 {
            assigns.push(FieldAssign::Delta {
                field: NumField::Size,
                delta: bytes,
            });
        }
        UpdateSpec::new(Cond::if_exist(quota_key, preds), assigns)
    }

    /// Applies a quota delta as its own single-shard primitive on the quota
    /// record's home shard (reservation / release / compensation).
    fn quota_apply(&self, inodes: i64, bytes: i64) -> FsResult<()> {
        let prim = Primitive {
            quota: Some(self.quota_spec(inodes, bytes)),
            ..Primitive::default()
        };
        self.taf.execute(prim)?;
        self.note_usage(inodes, bytes);
        Ok(())
    }

    /// Mirrors applied deltas on this client's per-tenant usage gauges.
    fn note_usage(&self, inodes: i64, bytes: i64) {
        if !self.metered() || (inodes == 0 && bytes == 0) {
            return;
        }
        let m = cfs_obs::metrics::local();
        m.gauge(&format!("tenant.vol{}.quota_inodes", self.volume.0))
            .add(inodes);
        m.gauge(&format!("tenant.vol{}.quota_bytes", self.volume.0))
            .add(bytes);
    }

    /// Executes a namespace primitive whose keys live on `target_kid`'s
    /// shard, charging `inodes`/`bytes` against the volume quota.
    ///
    /// Co-located quota record: the charge rides inside the primitive — one
    /// atomic replicated command, enforcement exactly as deterministic as
    /// the delta-apply merge itself. Cross-shard (the volume spans shards
    /// after a split): reserve on the quota shard first, compensate if the
    /// namespace op then fails. The deltas commute, so a client crash
    /// between the two steps can only leak a reservation — quota then
    /// over-restricts, never under-enforces, and namespace isolation (what
    /// the oracle checks) is unaffected.
    fn execute_charged(
        &self,
        prim: Primitive,
        target_kid: InodeId,
        inodes: i64,
        bytes: i64,
    ) -> FsResult<PrimResult> {
        if !self.metered() || (inodes == 0 && bytes == 0) {
            return self.taf.execute(prim);
        }
        debug_assert!(inodes >= 0 && bytes >= 0, "releases go through quota_apply");
        let pm = self.taf.partition_map();
        if pm.shard_for(self.volume.quota_kid()) == pm.shard_for(target_kid) {
            let res = self
                .taf
                .execute(prim.with_quota(self.quota_spec(inodes, bytes)))?;
            self.note_usage(inodes, bytes);
            return Ok(res);
        }
        self.quota_apply(inodes, bytes)?;
        match self.taf.execute(prim) {
            Ok(res) => Ok(res),
            Err(e) => {
                let _ = self.quota_apply(-inodes, -bytes);
                Err(e)
            }
        }
    }

    /// Best-effort post-op release (unlink/rmdir/overwriting rename).
    fn quota_release(&self, inodes: i64, bytes: i64) {
        if self.metered() && (inodes != 0 || bytes != 0) {
            let _ = self.quota_apply(-inodes, -bytes);
        }
    }

    /// The logical size of `ino`'s FileStore attribute (0 when absent or
    /// unreadable); used to size quota releases before deletion.
    fn file_size_of(&self, ino: InodeId) -> i64 {
        match self.fs.get_attr(ino) {
            Ok(Some(a)) => a.size as i64,
            _ => 0,
        }
    }

    // ---- internal op used by tests to model a crashed client -------------

    /// First phase of `create` only: writes the FileStore attribute but never
    /// links it into TafDB. Models a client crash between the two tiers of
    /// Figure 7; the garbage collector must clean the orphan up.
    #[doc(hidden)]
    pub fn create_crash_before_link(&self, p: &str) -> FsResult<InodeId> {
        let (_parent, _name) = self.resolve_parent_of(p)?;
        let ino = self.ts.alloc_id_in(self.volume)?;
        let now = self.ts.timestamp()?;
        self.fs.put_attr(Attr::new_file(ino, now.raw()))?;
        Ok(ino)
    }

    /// First phase of `rmdir` only (unlink from parent), never deleting the
    /// directory's `/_ATTR` record. Models the crash that the on-demand GC
    /// path repairs.
    #[doc(hidden)]
    pub fn unlink_crash_before_filestore(&self, p: &str) -> FsResult<InodeId> {
        let (parent, name) = self.resolve_parent_of(p)?;
        let now = self.ts.timestamp()?;
        let prim = Primitive::delete_with_update(
            Cond::require(
                Key::entry(parent, &name),
                vec![Pred::TypeIsNot(FileType::Dir)],
            ),
            Self::parent_update(parent, -1, 0, now.raw(), now),
        );
        let res = self.taf.execute(prim)?;
        self.cache_forget(parent, &name);
        let ino = res.deleted[0]
            .1
            .id
            .ok_or(FsError::Corrupted("deleted entry lacks id".into()))?;
        Ok(ino)
    }
}

impl Drop for CfsClient {
    fn drop(&mut self) {
        let _ = self.writeback_tx.send(Writeback::Stop);
        if let Some(t) = self.writeback_thread.take() {
            let _ = t.join();
        }
    }
}

impl FileSystem for CfsClient {
    fn create(&self, p: &str) -> FsResult<InodeId> {
        let _op = self.op_scope("fs.create");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let ino = self.ts.alloc_id_in(self.volume)?;
        let ts = self.ts.timestamp()?;
        let now = ts.raw();
        // Figure 7: creation writes FileStore first, namespace link last, so
        // a crash in between leaves only an invisible orphaned attribute.
        self.fs.put_attr(Attr::new_file(ino, now))?;
        let prim = Self::insert_entry_prim(
            parent,
            &name,
            Record::id_record(ino, FileType::File),
            0,
            now,
            ts,
        );
        match self.execute_charged(prim, parent, 1, 0) {
            Ok(_) => {
                // The create bumped the parent's generation server-side; a
                // cached negative for this name is now stale.
                self.cache_forget(parent, &name);
                Ok(ino)
            }
            Err(e) => {
                // The FileStore attribute is now orphaned; the GC's pairing
                // analysis will reclaim it. Surface the original error.
                Err(e)
            }
        }
    }

    fn mkdir(&self, p: &str) -> FsResult<InodeId> {
        let _op = self.op_scope("fs.mkdir");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let ino = self.ts.alloc_id_in(self.volume)?;
        let ts = self.ts.timestamp()?;
        let now = ts.raw();
        // Same deterministic order inside TafDB: the new directory's /_ATTR
        // record (on its home shard) first, the namespace link last.
        let mut attr_rec = Record::dir_attr_record(now, ts);
        attr_rec.id = Some(parent); // parent pointer, used by rename loop checks
        self.taf.put(Key::attr(ino), attr_rec)?;
        let prim = Self::insert_entry_prim(
            parent,
            &name,
            Record::id_record(ino, FileType::Dir),
            1, // child directory adds a link to the parent
            now,
            ts,
        );
        match self.execute_charged(prim, parent, 1, 0) {
            Ok(_) => {
                self.cache_forget(parent, &name);
                Ok(ino)
            }
            Err(e) => Err(e),
        }
    }

    fn unlink(&self, p: &str) -> FsResult<()> {
        let _op = self.op_scope("fs.unlink");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let ts = self.ts.timestamp()?;
        // Figure 7: deletion unlinks from the namespace first, then removes
        // the FileStore attribute (asynchronously; latency hidden).
        let prim = Primitive::delete_with_update(
            Cond::require(
                Key::entry(parent, &name),
                vec![Pred::TypeIsNot(FileType::Dir)],
            ),
            Self::parent_update(parent, -1, 0, ts.raw(), ts),
        );
        let res = self.taf.execute(prim)?;
        self.cache_forget(parent, &name);
        if let Some(ino) = res.deleted.first().and_then(|(_, r)| r.id) {
            // Size the quota release off the attribute before it is deleted.
            let bytes = if self.metered() {
                self.file_size_of(ino)
            } else {
                0
            };
            let _ = self.writeback_tx.send(Writeback::DeleteFile(ino));
            self.quota_release(1, bytes);
        }
        Ok(())
    }

    fn rmdir(&self, p: &str) -> FsResult<()> {
        let _op = self.op_scope("fs.rmdir");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        if ftype != FileType::Dir {
            return Err(FsError::NotDir);
        }
        let ts = self.ts.timestamp()?;
        // Namespace unlink first (with the id guard against stale cache),
        // then the directory's own /_ATTR record with the atomic emptiness
        // check on its home shard.
        //
        // The emptiness check runs on the attr shard; deleting the parent
        // link first would orphan a non-empty directory, so the attr record
        // (and its emptiness check) must go first here: the orphan left by a
        // crash in between is the *link* (dangling id record), which the
        // on-demand GC path reclaims when lookups fail (§4.4).
        let purge = Primitive {
            deletes: vec![Cond::require(
                Key::attr(ino),
                vec![Pred::TypeIs(FileType::Dir), Pred::ChildrenEq(0)],
            )],
            ..Primitive::default()
        };
        self.taf.execute(purge)?;
        let unlink = Primitive::delete_with_update(
            Cond::require(Key::entry(parent, &name), vec![Pred::IdEq(ino)]),
            Self::parent_update(parent, -1, -1, ts.raw(), ts),
        );
        self.taf.execute(unlink)?;
        self.cache_forget(parent, &name);
        // The directory is gone; drop everything cached under it too.
        self.dcache.forget_dir(ino);
        self.quota_release(1, 0);
        Ok(())
    }

    fn lookup(&self, p: &str) -> FsResult<InodeId> {
        let _op = self.op_scope("fs.lookup");
        self.admit()?;
        let comps = path::split(p)?;
        Ok(self.resolve_path(&comps)?.0)
    }

    fn getattr(&self, p: &str) -> FsResult<Attr> {
        let _op = self.op_scope("fs.getattr");
        self.admit()?;
        let comps = path::split(p)?;
        let (ino, ftype) = self.resolve_path(&comps)?;
        match ftype {
            FileType::Dir => {
                let rec = self.taf.get(&Key::attr(ino))?.ok_or(FsError::NotFound)?;
                rec.to_dir_attr(ino)
            }
            FileType::File | FileType::Symlink => {
                match self.fs.get_attr(ino)? {
                    Some(a) => Ok(a),
                    None => {
                        // Dangling id record (crashed unlink/rename): repair
                        // on demand, then report NotFound (§4.4).
                        if !comps.is_empty() {
                            let parent = self.resolve_dir(&comps[..comps.len() - 1])?;
                            let name = comps[comps.len() - 1];
                            self.cache_forget(parent, name);
                            let _ = crate::gc::repair_dangling_entry(&self.taf, parent, name, ino);
                        }
                        Err(FsError::NotFound)
                    }
                }
            }
        }
    }

    fn setattr(&self, p: &str, patch: SetAttrPatch) -> FsResult<()> {
        let _op = self.op_scope("fs.setattr");
        self.admit()?;
        let comps = path::split(p)?;
        let (ino, ftype) = self.resolve_path(&comps)?;
        let ts = self.ts.timestamp()?;
        match ftype {
            FileType::Dir => {
                let mut assigns = Vec::new();
                if let Some(m) = patch.mode {
                    assigns.push(FieldAssign::Set {
                        field: LwwField::Mode,
                        value: u64::from(m),
                        ts,
                    });
                }
                if let Some(u) = patch.uid {
                    assigns.push(FieldAssign::Set {
                        field: LwwField::Uid,
                        value: u64::from(u),
                        ts,
                    });
                }
                if let Some(g) = patch.gid {
                    assigns.push(FieldAssign::Set {
                        field: LwwField::Gid,
                        value: u64::from(g),
                        ts,
                    });
                }
                if let Some(t) = patch.mtime {
                    assigns.push(FieldAssign::Set {
                        field: LwwField::Mtime,
                        value: t,
                        ts,
                    });
                }
                if let Some(t) = patch.atime {
                    assigns.push(FieldAssign::Set {
                        field: LwwField::Atime,
                        value: t,
                        ts,
                    });
                }
                let prim = Primitive {
                    update: Some(UpdateSpec::new(
                        Cond::require(Key::attr(ino), vec![Pred::TypeIs(FileType::Dir)]),
                        assigns,
                    )),
                    ..Primitive::default()
                };
                self.taf.execute(prim).map(|_| ())
            }
            _ => self.fs.set_attr(ino, patch, ts),
        }
    }

    fn readdir(&self, p: &str) -> FsResult<Vec<DirEntryInfo>> {
        let _op = self.op_scope("fs.readdir");
        self.admit()?;
        let comps = path::split(p)?;
        let dir = self.resolve_dir(&comps)?;
        // Confirm it exists as a directory (root always does).
        if dir != ROOT_INODE || !comps.is_empty() {
            // resolve_dir already type-checked each component.
        }
        let mut out = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let page = self.taf.scan(dir, after.clone(), READDIR_PAGE)?;
            let done = page.len() < READDIR_PAGE as usize;
            for e in &page {
                let ino = e
                    .record
                    .id
                    .ok_or(FsError::Corrupted("entry lacks id".into()))?;
                let ftype = e
                    .record
                    .ftype
                    .ok_or(FsError::Corrupted("entry lacks type".into()))?;
                out.push(DirEntryInfo {
                    name: e.name.clone(),
                    ino,
                    ftype,
                });
            }
            if done {
                break;
            }
            after = page.last().map(|e| e.name.clone());
        }
        Ok(out)
    }

    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        let _op = self.op_scope("fs.rename");
        self.admit()?;
        let (src_parent, src_name) = self.resolve_parent_of(src)?;
        let (dst_parent, dst_name) = self.resolve_parent_of(dst)?;
        if src_parent == dst_parent && src_name == dst_name {
            // POSIX: renaming a path onto itself succeeds iff it exists.
            return self.resolve_entry(src_parent, &src_name).map(|_| ());
        }
        // The lookups that preceded a POSIX rename cached the entry types;
        // fast path iff both ends are files in the same directory (§4.3).
        let (src_ino, src_type) = self.resolve_entry(src_parent, &src_name)?;
        let dst_hit = match self.resolve_entry(dst_parent, &dst_name) {
            Ok(hit) => Some(hit),
            Err(FsError::NotFound) => None,
            Err(e) => return Err(e),
        };
        let fast = src_parent == dst_parent
            && src_type != FileType::Dir
            && dst_hit.is_none_or(|(_, t)| t != FileType::Dir);
        if fast {
            let ts = self.ts.timestamp()?;
            // Figure 8(c): one insert_and_delete_with_update primitive.
            let prim = Primitive::insert_and_delete_with_update(
                Key::entry(dst_parent, &dst_name),
                Record::id_record(src_ino, src_type),
                vec![
                    Cond::require(
                        Key::entry(src_parent, &src_name),
                        vec![Pred::TypeIsNot(FileType::Dir), Pred::IdEq(src_ino)],
                    ),
                    Cond::if_exist(
                        Key::entry(dst_parent, &dst_name),
                        vec![Pred::TypeIsNot(FileType::Dir)],
                    ),
                ],
                UpdateSpec::new(
                    Cond::require(Key::attr(src_parent), vec![Pred::TypeIs(FileType::Dir)]),
                    vec![
                        FieldAssign::Delta {
                            field: NumField::Children,
                            delta: 1,
                        },
                        FieldAssign::Set {
                            field: LwwField::Mtime,
                            value: ts.raw(),
                            ts,
                        },
                    ],
                )
                .with_per_deleted(vec![(NumField::Children, -1)]),
            );
            match self.taf.execute(prim) {
                Ok(res) => {
                    self.cache_forget(src_parent, &src_name);
                    self.cache_forget(dst_parent, &dst_name);
                    // Delete the overwritten destination's attribute, if any.
                    for (key, rec) in res.deleted {
                        if key == Key::entry(dst_parent, &dst_name) {
                            if let Some(ino) = rec.id {
                                let bytes = if self.metered() {
                                    self.file_size_of(ino)
                                } else {
                                    0
                                };
                                let _ = self.writeback_tx.send(Writeback::DeleteFile(ino));
                                if self.metered() {
                                    self.quota_release(1, bytes);
                                }
                            }
                        }
                    }
                    Ok(())
                }
                Err(FsError::Conflict) => {
                    // Stale cache: refresh and retry through the normal path.
                    self.cache_forget(src_parent, &src_name);
                    self.cache_forget(dst_parent, &dst_name);
                    self.renamer.rename(&RenameRequest {
                        src_parent,
                        src_name,
                        dst_parent,
                        dst_name,
                    })
                }
                Err(e) => Err(e),
            }
        } else {
            let res = self.renamer.rename(&RenameRequest {
                src_parent,
                src_name: src_name.clone(),
                dst_parent,
                dst_name: dst_name.clone(),
            });
            self.cache_forget(src_parent, &src_name);
            self.cache_forget(dst_parent, &dst_name);
            res
        }
    }

    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<InodeId> {
        let _op = self.op_scope("fs.symlink");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(linkpath)?;
        let ino = self.ts.alloc_id_in(self.volume)?;
        let ts = self.ts.timestamp()?;
        let now = ts.raw();
        self.fs.put_attr(Attr::new_symlink(ino, now, target))?;
        let mut rec = Record::id_record(ino, FileType::Symlink);
        rec.symlink_target = Some(target.to_string());
        let prim = Self::insert_entry_prim(parent, &name, rec, 0, now, ts);
        self.execute_charged(prim, parent, 1, 0)?;
        self.cache_forget(parent, &name);
        Ok(ino)
    }

    fn readlink(&self, p: &str) -> FsResult<String> {
        let _op = self.op_scope("fs.readlink");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let rec = self
            .taf
            .get(&Key::entry(parent, &name))?
            .ok_or(FsError::NotFound)?;
        if rec.ftype != Some(FileType::Symlink) {
            return Err(FsError::Invalid("not a symlink".into()));
        }
        rec.symlink_target
            .ok_or(FsError::Corrupted("symlink lacks target".into()))
    }

    fn write(&self, p: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        let _op = self.op_scope("fs.write");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        if ftype == FileType::Dir {
            return Err(FsError::IsDir);
        }
        // Charge the byte extension against the volume quota before any
        // block lands; overwrites inside the current size are free.
        if self.metered() && !data.is_empty() {
            let size = self.fs.get_attr(ino)?.map(|a| a.size).unwrap_or(0);
            let new_end = offset + data.len() as u64;
            if new_end > size {
                self.quota_apply(0, (new_end - size) as i64)?;
            }
        }
        let ts = self.ts.timestamp()?;
        // Split the write into block-aligned chunks.
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let block_idx = (abs / self.block_size) as u32;
            let within = abs % self.block_size;
            let take = ((self.block_size - within) as usize).min(data.len() - pos);
            // Read-modify-write for partial blocks.
            let block = BlockId {
                ino,
                index: block_idx,
            };
            let payload = if within == 0 && take as u64 == self.block_size {
                data[pos..pos + take].to_vec()
            } else {
                let mut existing = self.fs.read_block(block)?.unwrap_or_default();
                if existing.len() < (within as usize + take) {
                    existing.resize(within as usize + take, 0);
                }
                existing[within as usize..within as usize + take]
                    .copy_from_slice(&data[pos..pos + take]);
                existing
            };
            self.fs.write_block(block, abs - within, payload, ts)?;
            pos += take;
        }
        Ok(())
    }

    fn read(&self, p: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let _op = self.op_scope("fs.read");
        self.admit()?;
        let (parent, name) = self.resolve_parent_of(p)?;
        let (ino, ftype) = self.resolve_entry(parent, &name)?;
        if ftype == FileType::Dir {
            return Err(FsError::IsDir);
        }
        // POSIX read: getattr to learn the size, then fetch blocks.
        let attr = self.fs.get_attr(ino)?.ok_or(FsError::NotFound)?;
        if offset >= attr.size {
            return Ok(Vec::new());
        }
        let len = len.min((attr.size - offset) as usize);
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            let abs = offset + out.len() as u64;
            let block_idx = (abs / self.block_size) as u32;
            let within = abs as usize % self.block_size as usize;
            let take = (self.block_size as usize - within).min(len - out.len());
            let block = self
                .fs
                .read_block(BlockId {
                    ino,
                    index: block_idx,
                })?
                .unwrap_or_default();
            let end = (within + take).min(block.len());
            if within < block.len() {
                out.extend_from_slice(&block[within..end]);
            }
            // Holes read back as zeros.
            let copied = end.saturating_sub(within);
            out.resize(out.len() + take - copied, 0);
        }
        Ok(out)
    }
}

//! The garbage collector (paper §4.4).
//!
//! Because both TafDB and FileStore are Raft-protected, inconsistencies only
//! arise when a *client* crashes (or is partitioned away) between the two
//! phases of a metadata request. The collector watches the logical change
//! streams both tiers publish alongside their WALs and performs the paper's
//! *pairing analysis*:
//!
//! * a FileStore `AttrPut` with no paired TafDB id-record insert after the
//!   grace period is a crashed `create` — the orphaned attribute is deleted;
//! * a TafDB id-record delete with no paired FileStore `AttrDeleted` (and no
//!   re-insert, which is what a rename looks like) is a crashed
//!   `unlink`/`rename` — the leftover attribute and blocks are deleted;
//! * on-demand mode ([`repair_dangling_entry`]) handles the dangling id
//!   records a crashed `rmdir`/`unlink` leaves behind, triggered when
//!   `getattr`/`readdir` fail to fetch attribute records.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cfs_filestore::FileStoreClient;
use cfs_tafdb::primitive::{Primitive, UpdateSpec};
use cfs_tafdb::TafDbClient;
use cfs_types::codec::Decode;
use cfs_types::record::{FieldAssign, NumField, Pred};
use cfs_types::{CdcEvent, Cond, FileType, FsResult, InodeId, Key};
use cfs_wal::WalWatcher;
use parking_lot::Mutex;

/// Counters describing collector activity.
#[derive(Debug, Default)]
pub struct GcStats {
    /// Orphaned FileStore attributes removed (crashed creates).
    pub orphan_attrs_removed: AtomicU64,
    /// Leftover attributes removed after unpaired deletes (crashed unlinks).
    pub stale_attrs_removed: AtomicU64,
    /// Dangling id records repaired on demand (crashed rmdir/unlink).
    pub dangling_entries_repaired: AtomicU64,
    /// CDC events processed.
    pub events_processed: AtomicU64,
}

/// Per-inode pairing state.
#[derive(Debug, Default)]
struct InoState {
    inserts: u32,
    deletes: u32,
    attr_put: bool,
    attr_deleted: bool,
    /// True when the inode is a directory (its attribute lives in TafDB).
    dir_attr_put: bool,
    dir_attr_deleted: bool,
    last_event: Option<Instant>,
}

/// The background collector.
pub struct GarbageCollector {
    taf_watchers: Mutex<Vec<WalWatcher>>,
    fs_watchers: Mutex<Vec<WalWatcher>>,
    taf: TafDbClient,
    fs: FileStoreClient,
    state: Mutex<HashMap<InodeId, InoState>>,
    stats: Arc<GcStats>,
    /// How long an unpaired event must stay unpaired before being treated as
    /// an orphan.
    pub grace: Duration,
}

impl GarbageCollector {
    /// Creates a collector over the given change-stream watchers and repair
    /// clients.
    pub fn new(
        taf_watchers: Vec<WalWatcher>,
        fs_watchers: Vec<WalWatcher>,
        taf: TafDbClient,
        fs: FileStoreClient,
        grace: Duration,
    ) -> GarbageCollector {
        GarbageCollector {
            taf_watchers: Mutex::new(taf_watchers),
            fs_watchers: Mutex::new(fs_watchers),
            taf,
            fs,
            state: Mutex::new(HashMap::new()),
            stats: Arc::new(GcStats::default()),
            grace,
        }
    }

    /// The collector's counters.
    pub fn stats(&self) -> &Arc<GcStats> {
        &self.stats
    }

    fn ingest(&self) {
        let now = Instant::now();
        let mut events = Vec::new();
        for w in self.taf_watchers.lock().iter_mut() {
            for entry in w.poll() {
                if let Ok(e) = CdcEvent::from_bytes(&entry.payload) {
                    events.push(e);
                }
            }
        }
        for w in self.fs_watchers.lock().iter_mut() {
            for entry in w.poll() {
                if let Ok(e) = CdcEvent::from_bytes(&entry.payload) {
                    events.push(e);
                }
            }
        }
        let mut state = self.state.lock();
        for e in events {
            self.stats.events_processed.fetch_add(1, Ordering::Relaxed);
            let s = state.entry(e.ino()).or_default();
            s.last_event = Some(now);
            match e {
                CdcEvent::TafInsertedId { .. } => s.inserts += 1,
                CdcEvent::TafDeletedId { .. } => s.deletes += 1,
                CdcEvent::TafPutDirAttr { .. } => s.dir_attr_put = true,
                CdcEvent::TafDeletedDirAttr { .. } => s.dir_attr_deleted = true,
                CdcEvent::AttrPut { .. } => s.attr_put = true,
                CdcEvent::AttrDeleted { .. } => s.attr_deleted = true,
            }
        }
    }

    /// Runs one collection cycle: ingest fresh events, then sweep pairing
    /// state that has been quiet for longer than the grace period.
    pub fn run_once(&self) -> FsResult<()> {
        self.ingest();
        let now = Instant::now();
        let expired: Vec<(InodeId, InoState)> = {
            let mut state = self.state.lock();
            let keys: Vec<InodeId> = state
                .iter()
                .filter(|(_, s)| {
                    s.last_event
                        .is_some_and(|t| now.duration_since(t) >= self.grace)
                })
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| state.remove(&k).map(|s| (k, s)))
                .collect()
        };
        for (ino, s) in expired {
            let net = i64::from(s.inserts) - i64::from(s.deletes);
            if s.attr_put && s.inserts == 0 && !s.attr_deleted {
                // Crashed create: the attribute was written but never linked.
                self.fs.delete_file(ino)?;
                self.stats
                    .orphan_attrs_removed
                    .fetch_add(1, Ordering::Relaxed);
            } else if net < 0 {
                // Crashed unlink / rename: the link is gone, attribute state
                // may linger in either tier. All deletions are idempotent.
                if !s.attr_deleted {
                    self.fs.delete_file(ino)?;
                }
                if s.dir_attr_put && !s.dir_attr_deleted {
                    self.taf.delete(Key::attr(ino))?;
                }
                self.stats
                    .stale_attrs_removed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Starts the interval mode in a background thread.
    pub fn start(self: Arc<Self>, interval: Duration) -> GcHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("cfs-gc".into())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let _ = self.run_once();
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn gc thread");
        GcHandle {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle stopping a background collector on drop.
pub struct GcHandle {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for GcHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// On-demand repair of a dangling id record: called when `getattr` finds an
/// id record whose attribute no longer exists anywhere (crashed `rmdir` or a
/// crash between the id-record removal and attribute cleanup).
///
/// Verifies the attribute truly is gone from TafDB before unlinking the
/// record — a merely-slow create is left alone because its id record points
/// at an attribute that exists.
pub fn repair_dangling_entry(
    taf: &TafDbClient,
    parent: InodeId,
    name: &str,
    ino: InodeId,
) -> FsResult<bool> {
    // A directory's attribute record lives in TafDB.
    if taf.get(&Key::attr(ino))?.is_some() {
        return Ok(false);
    }
    let prim = Primitive::delete_with_update(
        Cond::require(Key::entry(parent, name), vec![Pred::IdEq(ino)]),
        UpdateSpec::new(
            Cond::require(Key::attr(parent), vec![Pred::TypeIs(FileType::Dir)]),
            vec![FieldAssign::Delta {
                field: NumField::Children,
                delta: -1,
            }],
        ),
    );
    match taf.execute(prim) {
        Ok(_) => Ok(true),
        Err(cfs_types::FsError::NotFound) | Err(cfs_types::FsError::Conflict) => Ok(false),
        Err(e) => Err(e),
    }
}

//! The POSIX-style file system trait shared by CFS and the baselines.

use cfs_filestore::SetAttrPatch;
use cfs_types::{Attr, FileType, FsResult, InodeId};

/// One `readdir` entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirEntryInfo {
    /// Entry name.
    pub name: String,
    /// Inode id.
    pub ino: InodeId,
    /// Inode type.
    pub ftype: FileType,
}

/// The metadata + data operations the paper evaluates, path-addressed.
///
/// All three systems under test (CFS, HopsFS-like, InfiniFS-like) implement
/// this trait, so the measurement harness and the POSIX-semantics test
/// battery drive them through identical code.
pub trait FileSystem: Send + Sync {
    /// Creates an empty regular file. Fails with `AlreadyExists` if the name
    /// is taken.
    fn create(&self, path: &str) -> FsResult<InodeId>;

    /// Creates a directory.
    fn mkdir(&self, path: &str) -> FsResult<InodeId>;

    /// Removes a regular file (or symlink).
    fn unlink(&self, path: &str) -> FsResult<()>;

    /// Removes an empty directory.
    fn rmdir(&self, path: &str) -> FsResult<()>;

    /// Resolves a path to its inode id.
    fn lookup(&self, path: &str) -> FsResult<InodeId>;

    /// Fetches the full attribute record.
    fn getattr(&self, path: &str) -> FsResult<Attr>;

    /// Applies a partial attribute update.
    fn setattr(&self, path: &str, patch: SetAttrPatch) -> FsResult<()>;

    /// Lists a directory.
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntryInfo>>;

    /// Renames `src` to `dst` (files and directories; POSIX semantics
    /// including destination replacement and loop prevention).
    fn rename(&self, src: &str, dst: &str) -> FsResult<()>;

    /// Creates a symbolic link at `linkpath` pointing to `target`.
    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<InodeId>;

    /// Reads a symlink's target.
    fn readlink(&self, path: &str) -> FsResult<String>;

    /// Writes `data` at `offset` into an existing file.
    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<()>;

    /// Reads up to `len` bytes at `offset` from an existing file.
    fn read(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>>;
}

impl FileSystem for Box<dyn FileSystem> {
    fn create(&self, path: &str) -> FsResult<InodeId> {
        (**self).create(path)
    }
    fn mkdir(&self, path: &str) -> FsResult<InodeId> {
        (**self).mkdir(path)
    }
    fn unlink(&self, path: &str) -> FsResult<()> {
        (**self).unlink(path)
    }
    fn rmdir(&self, path: &str) -> FsResult<()> {
        (**self).rmdir(path)
    }
    fn lookup(&self, path: &str) -> FsResult<InodeId> {
        (**self).lookup(path)
    }
    fn getattr(&self, path: &str) -> FsResult<Attr> {
        (**self).getattr(path)
    }
    fn setattr(&self, path: &str, patch: SetAttrPatch) -> FsResult<()> {
        (**self).setattr(path, patch)
    }
    fn readdir(&self, path: &str) -> FsResult<Vec<DirEntryInfo>> {
        (**self).readdir(path)
    }
    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        (**self).rename(src, dst)
    }
    fn symlink(&self, target: &str, linkpath: &str) -> FsResult<InodeId> {
        (**self).symlink(target, linkpath)
    }
    fn readlink(&self, path: &str) -> FsResult<String> {
        (**self).readlink(path)
    }
    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<()> {
        (**self).write(path, offset, data)
    }
    fn read(&self, path: &str, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        (**self).read(path, offset, len)
    }
}

//! Versioned dentry cache: a sharded LRU over `(dir, name)` entries with
//! positive *and* negative results, invalidated by per-directory generation
//! numbers.
//!
//! Every TafDB shard bumps a directory's generation whenever a replicated
//! command writes one of its entry records (create/unlink/rename/rmdir), and
//! piggybacks the generation on resolve responses. The client records the
//! last generation observed per directory; an observation that disagrees
//! with the recorded one drops that directory's cached entries — and only
//! that directory's — instead of clearing the whole cache.
//!
//! Negative entries get one extra guard. A positive entry that goes stale
//! fails loudly downstream (the inode's records are gone), but a stale
//! negative silently masks another client's `create`. So a negative result
//! is served locally only when the directory's generation was *re-confirmed
//! by a later response* than the one that inserted it, and serving it
//! consumes the confirmation: every locally-answered "not found" is backed
//! by a server round-trip, for that directory, that happened after the
//! miss was cached and saw the same generation.

use std::collections::{BTreeMap, HashMap};

use cfs_types::{FileType, InodeId};
use parking_lot::Mutex;

/// Default total entry capacity (matches the previous flat cache's cap).
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Number of independently locked cache shards.
const CACHE_SHARDS: usize = 16;

/// Outcome of a cache probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheLookup {
    /// The entry exists: `(ino, type)`.
    Hit(InodeId, FileType),
    /// The entry is known not to exist, and the directory's generation was
    /// confirmed after the miss was cached.
    Negative,
    /// Nothing usable cached; ask the server.
    Miss,
}

/// One cached resolution result.
struct CachedEntry {
    /// `Some((ino, type))` for a positive entry, `None` for a negative one.
    val: Option<(InodeId, FileType)>,
    /// Directory confirmation count when this entry was (re-)armed; a
    /// negative entry is servable only while `DirState::confirms` exceeds it.
    confirms_at_insert: u64,
    /// LRU slot key in [`CacheShard::lru`].
    tick: u64,
}

/// Per-directory cache state.
struct DirState {
    /// Last generation observed from this directory's TafDB shard.
    gen: u64,
    /// How many responses have confirmed `gen` for this directory.
    confirms: u64,
    /// Cached entries of this directory, by name.
    entries: HashMap<String, CachedEntry>,
}

/// One lock-sharded slice of the cache.
#[derive(Default)]
struct CacheShard {
    dirs: HashMap<InodeId, DirState>,
    /// LRU index: insertion/touch tick → entry address. Oldest first.
    lru: BTreeMap<u64, (InodeId, String)>,
    /// Total entries across `dirs` (mirrors `lru.len()`).
    len: usize,
    /// Monotonic touch counter.
    tick: u64,
}

impl CacheShard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Drops every cached entry of `dir`, keeping its generation state.
    fn drop_entries(&mut self, dir: InodeId) {
        if let Some(state) = self.dirs.get_mut(&dir) {
            for entry in state.entries.values() {
                self.lru.remove(&entry.tick);
                self.len -= 1;
            }
            state.entries.clear();
        }
    }

    /// Records `gen` for `dir`, dropping the directory's entries when it
    /// differs from the recorded one. Returns the directory's state.
    fn sync_gen(&mut self, dir: InodeId, gen: u64) -> &mut DirState {
        let stale = match self.dirs.get(&dir) {
            Some(state) => state.gen != gen,
            None => false,
        };
        if stale {
            self.drop_entries(dir);
        }
        let state = self.dirs.entry(dir).or_insert_with(|| DirState {
            gen,
            confirms: 0,
            entries: HashMap::new(),
        });
        if state.gen != gen {
            state.gen = gen;
        }
        state
    }

    fn evict_oldest(&mut self) {
        if let Some((&tick, _)) = self.lru.iter().next() {
            let (dir, name) = self.lru.remove(&tick).expect("lru slot exists");
            if let Some(state) = self.dirs.get_mut(&dir) {
                if state.entries.remove(&name).is_some() {
                    self.len -= 1;
                }
            }
        }
    }
}

/// The cache: `CACHE_SHARDS` independently locked slices, entries spread by
/// directory id so one directory's state lives under one lock.
pub struct DentryCache {
    shards: Vec<Mutex<CacheShard>>,
    cap_per_shard: usize,
}

impl DentryCache {
    /// Creates a cache bounded to roughly `capacity` entries in total.
    pub fn new(capacity: usize) -> DentryCache {
        DentryCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(CacheShard::default()))
                .collect(),
            cap_per_shard: (capacity / CACHE_SHARDS).max(1),
        }
    }

    fn shard(&self, dir: InodeId) -> &Mutex<CacheShard> {
        &self.shards[(dir.raw() % CACHE_SHARDS as u64) as usize]
    }

    /// Records a generation observation for `dir` piggybacked on a response,
    /// counting as one confirmation. A changed generation drops the
    /// directory's cached entries.
    pub fn observe_gen(&self, dir: InodeId, gen: u64) {
        let mut shard = self.shard(dir).lock();
        let state = shard.sync_gen(dir, gen);
        state.confirms += 1;
    }

    /// Caches one resolution result observed at generation `gen`:
    /// `Some((ino, type))` for a found entry, `None` for a confirmed miss.
    /// Re-inserting an identical result keeps the original arm point, so a
    /// negative becomes servable once any later response re-confirms the
    /// generation.
    pub fn insert(&self, dir: InodeId, name: &str, gen: u64, val: Option<(InodeId, FileType)>) {
        let mut shard = self.shard(dir).lock();
        let tick = shard.next_tick();
        let state = shard.sync_gen(dir, gen);
        let confirms = state.confirms;
        if let Some(entry) = state.entries.get_mut(name) {
            // Same result re-observed: refresh recency, keep the arm point.
            if entry.val == val {
                let old = entry.tick;
                entry.tick = tick;
                shard.lru.remove(&old);
                shard.lru.insert(tick, (dir, name.to_string()));
                return;
            }
            entry.val = val;
            entry.confirms_at_insert = confirms;
            let old = entry.tick;
            entry.tick = tick;
            shard.lru.remove(&old);
            shard.lru.insert(tick, (dir, name.to_string()));
            return;
        }
        state.entries.insert(
            name.to_string(),
            CachedEntry {
                val,
                confirms_at_insert: confirms,
                tick,
            },
        );
        shard.lru.insert(tick, (dir, name.to_string()));
        shard.len += 1;
        while shard.len > self.cap_per_shard {
            shard.evict_oldest();
        }
    }

    /// Probes the cache for `name` in `dir`. Serving a negative consumes its
    /// confirmation, so consecutive local "not found" answers each require a
    /// fresh post-insert confirmation of the directory's generation.
    pub fn lookup(&self, dir: InodeId, name: &str) -> CacheLookup {
        let mut shard = self.shard(dir).lock();
        let tick = shard.next_tick();
        let Some(state) = shard.dirs.get_mut(&dir) else {
            return CacheLookup::Miss;
        };
        let Some(entry) = state.entries.get_mut(name) else {
            return CacheLookup::Miss;
        };
        let result = match entry.val {
            Some((ino, ftype)) => CacheLookup::Hit(ino, ftype),
            None if state.confirms > entry.confirms_at_insert => {
                entry.confirms_at_insert = state.confirms;
                CacheLookup::Negative
            }
            None => CacheLookup::Miss,
        };
        let old = entry.tick;
        entry.tick = tick;
        shard.lru.remove(&old);
        shard.lru.insert(tick, (dir, name.to_string()));
        result
    }

    /// Forgets one entry (the caller mutated it, or learned it is stale).
    pub fn forget(&self, dir: InodeId, name: &str) {
        let mut shard = self.shard(dir).lock();
        if let Some(state) = shard.dirs.get_mut(&dir) {
            if let Some(entry) = state.entries.remove(name) {
                shard.lru.remove(&entry.tick);
                shard.len -= 1;
            }
        }
    }

    /// Drops everything known about `dir` — entries and generation state.
    /// Used when the directory itself is removed.
    pub fn forget_dir(&self, dir: InodeId) {
        let mut shard = self.shard(dir).lock();
        shard.drop_entries(dir);
        shard.dirs.remove(&dir);
    }

    /// Total cached entries (tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: InodeId = InodeId(42);

    fn pos(ino: u64) -> Option<(InodeId, FileType)> {
        Some((InodeId(ino), FileType::Dir))
    }

    #[test]
    fn positive_hits_are_served_at_the_observed_generation() {
        let cache = DentryCache::new(64);
        cache.observe_gen(DIR, 3);
        cache.insert(DIR, "a", 3, pos(7));
        assert_eq!(
            cache.lookup(DIR, "a"),
            CacheLookup::Hit(InodeId(7), FileType::Dir)
        );
    }

    #[test]
    fn generation_change_drops_only_that_directory() {
        let cache = DentryCache::new(64);
        let other = InodeId(43);
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "a", 1, pos(7));
        cache.observe_gen(other, 5);
        cache.insert(other, "b", 5, pos(8));
        // DIR's generation moved: its entry goes, the other survives.
        cache.observe_gen(DIR, 2);
        assert_eq!(cache.lookup(DIR, "a"), CacheLookup::Miss);
        assert_eq!(
            cache.lookup(other, "b"),
            CacheLookup::Hit(InodeId(8), FileType::Dir)
        );
    }

    #[test]
    fn negative_requires_a_confirmation_newer_than_its_insert() {
        let cache = DentryCache::new(64);
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "ghost", 1, None);
        // No confirmation since the insert: revalidate.
        assert_eq!(cache.lookup(DIR, "ghost"), CacheLookup::Miss);
        // The revalidation re-observed the generation and re-inserted the
        // same miss; the original arm point is kept.
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "ghost", 1, None);
        assert_eq!(cache.lookup(DIR, "ghost"), CacheLookup::Negative);
        // Serving consumed the confirmation.
        assert_eq!(cache.lookup(DIR, "ghost"), CacheLookup::Miss);
        // Any same-generation response for the directory re-arms it.
        cache.observe_gen(DIR, 1);
        assert_eq!(cache.lookup(DIR, "ghost"), CacheLookup::Negative);
    }

    #[test]
    fn negative_dies_with_the_generation_that_spawned_it() {
        let cache = DentryCache::new(64);
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "ghost", 1, None);
        cache.observe_gen(DIR, 1); // armed
                                   // Another client created something in DIR: the next response shows
                                   // generation 2 and the negative is gone, armed or not.
        cache.observe_gen(DIR, 2);
        assert_eq!(cache.lookup(DIR, "ghost"), CacheLookup::Miss);
    }

    #[test]
    fn lru_evicts_the_coldest_entry_first() {
        // Capacity 16 spread over 16 shards = 1 entry per shard; use one
        // directory so everything contends for the same slot.
        let cache = DentryCache::new(16);
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "a", 1, pos(1));
        cache.insert(DIR, "b", 1, pos(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(DIR, "a"), CacheLookup::Miss);
        assert_eq!(
            cache.lookup(DIR, "b"),
            CacheLookup::Hit(InodeId(2), FileType::Dir)
        );
    }

    #[test]
    fn touch_refreshes_recency() {
        let cache = DentryCache::new(32); // 2 per shard
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "a", 1, pos(1));
        cache.insert(DIR, "b", 1, pos(2));
        // Touch "a" so "b" is now the coldest.
        assert_eq!(
            cache.lookup(DIR, "a"),
            CacheLookup::Hit(InodeId(1), FileType::Dir)
        );
        cache.insert(DIR, "c", 1, pos(3));
        assert_eq!(
            cache.lookup(DIR, "a"),
            CacheLookup::Hit(InodeId(1), FileType::Dir)
        );
        assert_eq!(cache.lookup(DIR, "b"), CacheLookup::Miss);
    }

    #[test]
    fn forget_dir_clears_generation_state_too() {
        let cache = DentryCache::new(64);
        cache.observe_gen(DIR, 1);
        cache.insert(DIR, "a", 1, pos(1));
        cache.forget_dir(DIR);
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(DIR, "a"), CacheLookup::Miss);
    }
}

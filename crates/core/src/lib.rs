//! CFS core — the client library, cluster assembly, and garbage collector.
//!
//! This crate is the paper's primary contribution assembled into a usable
//! file system:
//!
//! * [`client::CfsClient`] — **ClientLib** (paper §3.2): client-side metadata
//!   resolving with a cached partition map and entry cache, direct paths to
//!   TafDB / FileStore / Renamer (no metadata proxy layer), the deterministic
//!   cross-tier execution order of Figure 7, and fast-path vs normal-path
//!   rename dispatch.
//! * [`cluster::CfsCluster`] — spins up a full simulated deployment: the TS
//!   group, range-partitioned Raft-replicated TafDB shards, hash-partitioned
//!   Raft-replicated FileStore nodes, and the Renamer coordinator.
//! * [`gc::GarbageCollector`] — the background pairing analysis of §4.4 over
//!   the TafDB and FileStore change streams, plus the on-demand path used
//!   when `getattr`/`readdir` hit records orphaned by a crashed `rmdir`.
//! * [`fsapi::FileSystem`] — the POSIX-style trait all three systems (CFS,
//!   HopsFS-like, InfiniFS-like) implement, so the harness drives them
//!   identically.

pub mod client;
pub mod cluster;
pub mod dcache;
pub mod fsapi;
pub mod gc;
pub mod path;

pub use cfs_tafdb::ReadConsistency;
pub use client::CfsClient;
pub use cluster::{CfsCluster, CfsConfig};
pub use dcache::DentryCache;
pub use fsapi::{DirEntryInfo, FileSystem};
pub use gc::{GarbageCollector, GcStats};

//! Path parsing helpers shared by every file system implementation.

use cfs_types::{key::validate_name, FsError, FsResult};

/// Splits an absolute path into validated components.
///
/// `"/"` yields an empty component list (the root itself).
pub fn split(path: &str) -> FsResult<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::Invalid(format!("path must be absolute: {path:?}")));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        if comp.is_empty() {
            continue;
        }
        validate_name(comp)?;
        out.push(comp);
    }
    Ok(out)
}

/// Splits a path into `(parent components, final name)`.
///
/// Errors on the root path, which has no parent.
pub fn split_parent(path: &str) -> FsResult<(Vec<&str>, &str)> {
    let mut comps = split(path)?;
    let name = comps
        .pop()
        .ok_or_else(|| FsError::Invalid("root has no parent".into()))?;
    Ok((comps, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_absolute_paths() {
        assert_eq!(split("/").unwrap(), Vec::<&str>::new());
        assert_eq!(split("/a/b/c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(split("//a//b/").unwrap(), vec!["a", "b"]);
    }

    #[test]
    fn rejects_relative_and_invalid() {
        assert!(split("a/b").is_err());
        assert!(split("/a/../b").is_err());
        assert!(split("/a/./b").is_err());
    }

    #[test]
    fn splits_parent_and_name() {
        let (parent, name) = split_parent("/x/y/z").unwrap();
        assert_eq!(parent, vec!["x", "y"]);
        assert_eq!(name, "z");
        assert!(split_parent("/").is_err());
    }
}

//! Renamer — the dedicated coordinator for normal-path renames (paper §4.3).
//!
//! The intra-directory *file* rename fast path never reaches this service: it
//! is a single `insert_and_delete_with_update` primitive issued directly by
//! the client library. Everything else — cross-directory renames and any
//! rename involving a directory — needs the strongest consistency and comes
//! here, where the coordinator:
//!
//! 1. serializes conflicting renames via its own inode-level lock table (and
//!    a global directory-topology lock for directory moves),
//! 2. acquires TafDB row locks on every touched row so that concurrent
//!    single-shard primitives stay isolated from the distributed transaction,
//! 3. verifies the rename is **orphaned-loop-free** by walking the
//!    destination's ancestor chain (a directory may never become its own
//!    ancestor),
//! 4. executes the per-shard shares of the rename as staged primitives under
//!    two-phase commit across the involved TafDB shards,
//! 5. finally deletes the overwritten destination's FileStore attribute
//!    (TafDB-before-FileStore deletion order, Figure 7).
//!
//! The paper deploys the Renamer as a small Raft-protected group with one
//! coordinator; this reproduction runs a single coordinator service — its
//! state (locks, in-flight transactions) is reconstructible, and crash
//! recovery of in-flight 2PC is the garbage collector's pairing analysis, as
//! in the paper. (See DESIGN.md substitutions.)

pub mod api;
pub mod service;

pub use api::{RenameRequest, RenameResponse};
pub use service::{RenamerClient, RenamerService};

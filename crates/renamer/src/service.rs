//! The rename coordinator implementation.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cfs_filestore::FileStoreClient;
use cfs_rpc::mux::{frame, CH_APP};
use cfs_rpc::{Network, Service};
use cfs_tafdb::api::{TxnRequest, TxnResponse};
use cfs_tafdb::primitive::{Primitive, UpdateSpec};
use cfs_tafdb::{TafDbClient, TsClient};
use cfs_types::codec::{Decode, Encode};
use cfs_types::{
    key::validate_name, Cond, FieldAssign, FileType, FsError, FsResult, InodeId, Key, LwwField,
    NodeId, NumField, Pred, Record, ShardId,
};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::api::{RenameRequest, RenameResponse};

/// Base of the Renamer's transaction-id space, disjoint from the baselines'
/// coordinator ids.
const RENAMER_TXN_BASE: u64 = 1 << 48;

/// Maximum directory depth walked during the orphan-loop check.
const MAX_DEPTH: usize = 4096;

/// The normal-path rename coordinator.
pub struct RenamerService {
    taf: TafDbClient,
    fs: FileStoreClient,
    ts: TsClient,
    /// Per-inode coordination locks serializing conflicting renames.
    inode_locks: Mutex<HashSet<InodeId>>,
    lock_released: Condvar,
    /// Directory-topology lock: directory moves take it exclusively so the
    /// ancestor walk of the loop check sees a stable hierarchy.
    topo: RwLock<()>,
    txn_counter: AtomicU64,
}

impl RenamerService {
    /// Creates the coordinator over existing TafDB/FileStore/TS clients.
    pub fn new(taf: TafDbClient, fs: FileStoreClient, ts: TsClient) -> Arc<RenamerService> {
        Arc::new(RenamerService {
            taf,
            fs,
            ts,
            inode_locks: Mutex::new(HashSet::new()),
            lock_released: Condvar::new(),
            topo: RwLock::new(()),
            txn_counter: AtomicU64::new(RENAMER_TXN_BASE),
        })
    }

    /// Registers the coordinator at `node` on the network.
    pub fn register(self: &Arc<Self>, net: &Arc<Network>, node: NodeId) {
        let mux = cfs_rpc::MuxService::new();
        mux.mount(CH_APP, Arc::clone(self) as Arc<dyn Service>);
        net.register(node, mux);
    }

    fn lock_inodes(&self, mut inos: Vec<InodeId>) -> InodeLockGuard<'_> {
        inos.sort_unstable();
        inos.dedup();
        let mut held = self.inode_locks.lock();
        loop {
            if inos.iter().all(|i| !held.contains(i)) {
                for i in &inos {
                    held.insert(*i);
                }
                return InodeLockGuard { svc: self, inos };
            }
            self.lock_released.wait(&mut held);
        }
    }

    /// Walks `from`'s ancestor chain; errors with [`FsError::Loop`] when
    /// `forbidden` appears (the moved directory would become its own
    /// ancestor).
    fn check_loop_free(&self, forbidden: InodeId, from: InodeId) -> FsResult<()> {
        let mut cur = from;
        for _ in 0..MAX_DEPTH {
            if cur == forbidden {
                return Err(FsError::Loop);
            }
            if cur == cfs_types::ROOT_INODE {
                return Ok(());
            }
            let attr = self
                .taf
                .get(&Key::attr(cur))?
                .ok_or_else(|| FsError::Corrupted(format!("missing attr record for {cur:?}")))?;
            cur = attr
                .id
                .ok_or_else(|| FsError::Corrupted(format!("attr of {cur:?} lacks parent")))?;
        }
        Err(FsError::Loop)
    }

    /// Executes one rename request end to end.
    pub fn process(&self, req: &RenameRequest) -> FsResult<()> {
        validate_name(&req.src_name)?;
        validate_name(&req.dst_name)?;
        if req.src_parent == req.dst_parent && req.src_name == req.dst_name {
            // POSIX: renaming a path onto itself succeeds iff it exists.
            return match self.taf.get(&Key::entry(req.src_parent, &req.src_name))? {
                Some(_) => Ok(()),
                None => Err(FsError::NotFound),
            };
        }

        // Peek at the source type to decide whether the directory-topology
        // lock is needed; the actual validation re-reads under locks.
        let peek = self
            .taf
            .get(&Key::entry(req.src_parent, &req.src_name))?
            .ok_or(FsError::NotFound)?;
        let is_dir_move = peek.ftype == Some(FileType::Dir);

        let _topo_guard: TopoGuard<'_> = if is_dir_move {
            TopoGuard::Write(self.topo.write())
        } else {
            TopoGuard::Read(self.topo.read())
        };
        let _inode_guard = self.lock_inodes(vec![req.src_parent, req.dst_parent]);

        // Re-read and validate under locks.
        let src_rec = self
            .taf
            .get(&Key::entry(req.src_parent, &req.src_name))?
            .ok_or(FsError::NotFound)?;
        let src_id = src_rec
            .id
            .ok_or(FsError::Corrupted("src entry lacks id".into()))?;
        let src_type = src_rec
            .ftype
            .ok_or(FsError::Corrupted("src entry lacks type".into()))?;
        let dst_rec = self.taf.get(&Key::entry(req.dst_parent, &req.dst_name))?;
        let dst_parent_attr = self
            .taf
            .get(&Key::attr(req.dst_parent))?
            .ok_or(FsError::NotFound)?;
        if dst_parent_attr.ftype != Some(FileType::Dir) {
            return Err(FsError::NotDir);
        }
        let mut replaced_file: Option<InodeId> = None;
        let mut replaced_dir: Option<InodeId> = None;
        if let Some(dst) = &dst_rec {
            let dst_id = dst
                .id
                .ok_or(FsError::Corrupted("dst entry lacks id".into()))?;
            if dst_id == src_id {
                // Hard links to the same inode: POSIX rename is a no-op.
                return Ok(());
            }
            match (src_type, dst.ftype) {
                (FileType::Dir, Some(FileType::Dir)) => {
                    // Destination directory must be empty.
                    let dst_attr = self
                        .taf
                        .get(&Key::attr(dst_id))?
                        .ok_or(FsError::Corrupted("dst dir lacks attr".into()))?;
                    if dst_attr.children.unwrap_or(0) > 0 {
                        return Err(FsError::NotEmpty);
                    }
                    replaced_dir = Some(dst_id);
                }
                (FileType::Dir, _) => return Err(FsError::NotDir),
                (_, Some(FileType::Dir)) => return Err(FsError::IsDir),
                _ => replaced_file = Some(dst_id),
            }
        }
        if src_type == FileType::Dir {
            // The moved directory must not be an ancestor of (or equal to)
            // the destination parent.
            self.check_loop_free(src_id, req.dst_parent)?;
        }

        // Build the per-shard primitive shares.
        let pmap = self.taf.partition_map();
        let now = self.ts.timestamp()?;
        let mtime = now.raw();
        let same_parent = req.src_parent == req.dst_parent;
        let cross_parent_dir = src_type == FileType::Dir && !same_parent;

        let mut shares: Vec<(ShardId, Primitive)> = Vec::new();
        let dst_update = {
            let mut assigns = vec![
                FieldAssign::Delta {
                    field: NumField::Children,
                    delta: 1,
                },
                FieldAssign::Set {
                    field: LwwField::Mtime,
                    value: mtime,
                    ts: now,
                },
            ];
            if cross_parent_dir {
                assigns.push(FieldAssign::Delta {
                    field: NumField::Links,
                    delta: 1,
                });
            }
            UpdateSpec::new(
                Cond::require(Key::attr(req.dst_parent), vec![Pred::TypeIs(FileType::Dir)]),
                assigns,
            )
            .with_per_deleted(vec![(NumField::Children, -1)])
        };
        let mut dst_prim = Primitive::insert_and_delete_with_update(
            Key::entry(req.dst_parent, &req.dst_name),
            Record::id_record(src_id, src_type),
            vec![Cond::if_exist(
                Key::entry(req.dst_parent, &req.dst_name),
                Vec::new(),
            )],
            dst_update,
        );
        if same_parent {
            // Fold the source deletion into the same share.
            dst_prim.deletes.push(Cond::require(
                Key::entry(req.src_parent, &req.src_name),
                vec![Pred::IdEq(src_id)],
            ));
            shares.push((pmap.shard_for(req.dst_parent), dst_prim));
        } else {
            shares.push((pmap.shard_for(req.dst_parent), dst_prim));
            let mut src_assigns = vec![FieldAssign::Set {
                field: LwwField::Mtime,
                value: mtime,
                ts: now,
            }];
            if cross_parent_dir {
                src_assigns.push(FieldAssign::Delta {
                    field: NumField::Links,
                    delta: -1,
                });
            }
            let src_prim = Primitive::delete_with_update(
                Cond::require(
                    Key::entry(req.src_parent, &req.src_name),
                    vec![Pred::IdEq(src_id)],
                ),
                UpdateSpec::new(
                    Cond::require(Key::attr(req.src_parent), vec![Pred::TypeIs(FileType::Dir)]),
                    src_assigns,
                )
                .with_per_deleted(vec![(NumField::Children, -1)]),
            );
            shares.push((pmap.shard_for(req.src_parent), src_prim));
        }
        if cross_parent_dir {
            // Repoint the moved directory's parent pointer.
            let repoint = Primitive {
                update: Some(
                    UpdateSpec::new(Cond::require(Key::attr(src_id), Vec::new()), Vec::new())
                        .with_set_id(req.dst_parent),
                ),
                ..Primitive::default()
            };
            shares.push((pmap.shard_for(src_id), repoint));
        }
        if let Some(dir) = replaced_dir {
            // Remove the replaced empty directory's attr record, re-checking
            // emptiness atomically inside the shard.
            let purge = Primitive {
                deletes: vec![Cond::require(Key::attr(dir), vec![Pred::ChildrenEq(0)])],
                ..Primitive::default()
            };
            shares.push((pmap.shard_for(dir), purge));
        }

        // Row-lock every touched key (global key order across shards) so
        // concurrent single-shard primitives wait out this transaction.
        let txn = self.txn_counter.fetch_add(1, Ordering::Relaxed);
        let mut lock_keys: Vec<Key> = shares
            .iter()
            .flat_map(|(_, p)| {
                p.inserts
                    .iter()
                    .map(|(k, _)| k.clone())
                    .chain(p.deletes.iter().map(|c| c.key.clone()))
                    .chain(p.update.iter().map(|u| u.cond.key.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        cfs_tafdb::locking::sort_lock_keys(&mut lock_keys);
        lock_keys.dedup();
        let locked_shards: Vec<ShardId> = {
            let mut s: Vec<ShardId> = lock_keys.iter().map(|k| pmap.shard_for(k.kid)).collect();
            s.sort_by_key(|s| s.0);
            s.dedup();
            s
        };
        for key in &lock_keys {
            let shard = pmap.shard_for(key.kid);
            match self.taf.txn_request(
                shard,
                &TxnRequest::Lock {
                    txn,
                    key: key.clone(),
                },
            )? {
                TxnResponse::Ok => {}
                TxnResponse::Err(e) => {
                    self.abort(txn, &locked_shards);
                    return Err(e);
                }
                other => {
                    self.abort(txn, &locked_shards);
                    return Err(FsError::Corrupted(format!(
                        "unexpected lock resp {other:?}"
                    )));
                }
            }
        }

        // Two-phase commit: prepare every share, then commit.
        let mut participants: Vec<ShardId> = shares.iter().map(|(s, _)| *s).collect();
        participants.sort_by_key(|s| s.0);
        participants.dedup();
        for (shard, prim) in &shares {
            match self.taf.txn_request(
                *shard,
                &TxnRequest::PreparePrim {
                    txn,
                    prim: prim.clone(),
                },
            ) {
                Ok(TxnResponse::Ok) => {}
                Ok(TxnResponse::Err(e)) => {
                    self.abort(txn, &locked_shards);
                    return Err(e);
                }
                Ok(other) => {
                    self.abort(txn, &locked_shards);
                    return Err(FsError::Corrupted(format!(
                        "unexpected prepare resp {other:?}"
                    )));
                }
                Err(e) => {
                    self.abort(txn, &locked_shards);
                    return Err(e);
                }
            }
        }
        let mut commit_err: Option<FsError> = None;
        for shard in &participants {
            match self
                .taf
                .txn_request(*shard, &TxnRequest::CommitPrepared { txn })
            {
                Ok(TxnResponse::Ok) | Ok(TxnResponse::Locked(_)) => {}
                Ok(TxnResponse::Err(e)) => commit_err = Some(e),
                Err(e) => commit_err = Some(e),
            }
        }
        // Release row locks on shards that were locked but had no share
        // (never happens today: every locked key belongs to a share's shard,
        // and CommitPrepared released those).
        for shard in locked_shards.iter().filter(|s| !participants.contains(s)) {
            let _ = self.taf.txn_request(*shard, &TxnRequest::Abort { txn });
        }
        if let Some(e) = commit_err {
            return Err(e);
        }

        // FileStore phase: delete the overwritten destination file's
        // attribute and blocks (deletion order TafDB → FileStore, Figure 7).
        if let Some(ino) = replaced_file {
            self.fs.delete_file(ino)?;
        }
        Ok(())
    }

    fn abort(&self, txn: u64, shards: &[ShardId]) {
        for shard in shards {
            let _ = self.taf.txn_request(*shard, &TxnRequest::Abort { txn });
        }
    }
}

/// RAII holder for either flavor of the topology lock; only its drop matters.
enum TopoGuard<'a> {
    Read(#[allow(dead_code)] parking_lot::RwLockReadGuard<'a, ()>),
    Write(#[allow(dead_code)] parking_lot::RwLockWriteGuard<'a, ()>),
}

struct InodeLockGuard<'a> {
    svc: &'a RenamerService,
    inos: Vec<InodeId>,
}

impl Drop for InodeLockGuard<'_> {
    fn drop(&mut self) {
        let mut held = self.svc.inode_locks.lock();
        for i in &self.inos {
            held.remove(i);
        }
        drop(held);
        self.svc.lock_released.notify_all();
    }
}

impl Service for RenamerService {
    fn handle(&self, _from: NodeId, payload: &[u8]) -> Vec<u8> {
        let resp = match RenameRequest::from_bytes(payload) {
            Ok(req) => match self.process(&req) {
                Ok(()) => RenameResponse::Ok,
                Err(e) => RenameResponse::Err(e),
            },
            Err(e) => RenameResponse::Err(FsError::from(e)),
        };
        resp.to_bytes()
    }
}

/// Client handle for the Renamer service.
pub struct RenamerClient {
    net: Arc<Network>,
    me: NodeId,
    renamer: NodeId,
}

impl RenamerClient {
    /// Creates a client targeting the coordinator at `renamer`.
    pub fn new(net: Arc<Network>, me: NodeId, renamer: NodeId) -> RenamerClient {
        RenamerClient { net, me, renamer }
    }

    /// Executes a normal-path rename through the coordinator.
    pub fn rename(&self, req: &RenameRequest) -> FsResult<()> {
        let resp = self
            .net
            .call(self.me, self.renamer, &frame(CH_APP, &req.to_bytes()))?;
        match RenameResponse::from_bytes(&resp)? {
            RenameResponse::Ok => Ok(()),
            RenameResponse::Err(e) => Err(e),
        }
    }
}

//! Wire protocol of the Renamer service.

use cfs_types::codec::{Decode, DecodeError, Encode};
use cfs_types::{FsError, InodeId};

/// A normal-path rename request, with the path components already resolved to
/// parent inode ids by the client library.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RenameRequest {
    /// Source parent directory.
    pub src_parent: InodeId,
    /// Source entry name.
    pub src_name: String,
    /// Destination parent directory.
    pub dst_parent: InodeId,
    /// Destination entry name.
    pub dst_name: String,
}

impl Encode for RenameRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.src_parent.encode(buf);
        self.src_name.encode(buf);
        self.dst_parent.encode(buf);
        self.dst_name.encode(buf);
    }
}

impl Decode for RenameRequest {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(RenameRequest {
            src_parent: InodeId::decode(input)?,
            src_name: String::decode(input)?,
            dst_parent: InodeId::decode(input)?,
            dst_name: String::decode(input)?,
        })
    }
}

/// Response of the Renamer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RenameResponse {
    /// The rename committed.
    Ok,
    /// The rename failed.
    Err(FsError),
}

impl Encode for RenameResponse {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RenameResponse::Ok => buf.push(0),
            RenameResponse::Err(e) => {
                buf.push(1);
                e.encode(buf);
            }
        }
    }
}

impl Decode for RenameResponse {
    fn decode(input: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(match u8::decode(input)? {
            0 => RenameResponse::Ok,
            1 => RenameResponse::Err(FsError::decode(input)?),
            t => return Err(DecodeError::InvalidTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_messages_round_trip() {
        let req = RenameRequest {
            src_parent: InodeId(4),
            src_name: "old".into(),
            dst_parent: InodeId(9),
            dst_name: "new".into(),
        };
        assert_eq!(RenameRequest::from_bytes(&req.to_bytes()).unwrap(), req);
        for resp in [RenameResponse::Ok, RenameResponse::Err(FsError::Loop)] {
            assert_eq!(RenameResponse::from_bytes(&resp.to_bytes()).unwrap(), resp);
        }
    }
}

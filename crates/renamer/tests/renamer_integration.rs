//! Integration tests of the rename coordinator over a real TafDB+FileStore
//! deployment, exercising the 2PC paths and concurrency properties directly
//! (the end-to-end path-level behavior is covered in `cfs-core`'s tests).

use std::sync::Arc;
use std::time::Duration;

use cfs_core::{CfsCluster, CfsConfig, FileSystem};
use cfs_types::FsError;

fn cluster() -> Arc<CfsCluster> {
    Arc::new(CfsCluster::start(CfsConfig::test_small()).expect("boot"))
}

#[test]
fn concurrent_cross_directory_renames_serialize_correctly() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();
    for i in 0..20 {
        fs.create(&format!("/a/f{i}")).unwrap();
    }
    // Many clients move disjoint files from /a to /b concurrently; every
    // move goes through the Renamer (cross-directory).
    std::thread::scope(|s| {
        for t in 0..4 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                let fs = c.client();
                for i in (t..20).step_by(4) {
                    fs.rename(&format!("/a/f{i}"), &format!("/b/f{i}")).unwrap();
                }
            });
        }
    });
    assert_eq!(fs.getattr("/a").unwrap().children, 0);
    assert_eq!(fs.getattr("/b").unwrap().children, 20);
    assert_eq!(fs.readdir("/b").unwrap().len(), 20);
}

#[test]
fn opposing_renames_of_same_file_have_one_winner() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/x").unwrap();
    fs.mkdir("/y").unwrap();
    for round in 0..10 {
        let name = format!("t{round}");
        fs.create(&format!("/x/{name}")).unwrap();
        let (r1, r2) = std::thread::scope(|s| {
            let c1 = Arc::clone(&c);
            let n1 = name.clone();
            let h1 = s.spawn(move || {
                c1.client()
                    .rename(&format!("/x/{n1}"), &format!("/y/{n1}-via1"))
            });
            let c2 = Arc::clone(&c);
            let n2 = name.clone();
            let h2 = s.spawn(move || {
                c2.client()
                    .rename(&format!("/x/{n2}"), &format!("/y/{n2}-via2"))
            });
            (h1.join().unwrap(), h2.join().unwrap())
        });
        // Exactly one of the two opposing renames must win.
        assert!(
            r1.is_ok() ^ r2.is_ok(),
            "round {round}: exactly one winner expected, got {r1:?} / {r2:?}"
        );
        let in_y = fs.readdir("/y").unwrap().len();
        assert_eq!(in_y, round + 1, "one file lands in /y per round");
    }
    assert_eq!(fs.getattr("/x").unwrap().children, 0);
}

#[test]
fn concurrent_dir_moves_never_create_loops() {
    let c = cluster();
    let fs = c.client();
    // Build a small tree: /r/{p0,p1,p2}/child.
    fs.mkdir("/r").unwrap();
    for p in 0..3 {
        fs.mkdir(&format!("/r/p{p}")).unwrap();
        fs.mkdir(&format!("/r/p{p}/child")).unwrap();
    }
    // Threads try conflicting directory moves, including ones that would
    // create loops if interleaved unsafely.
    std::thread::scope(|s| {
        for t in 0..3 {
            let c = Arc::clone(&c);
            s.spawn(move || {
                let fs = c.client();
                let src = format!("/r/p{t}");
                let dst_parent = (t + 1) % 3;
                // Moving p{t} under p{t+1}/child — may succeed or legally
                // fail (Loop / NotFound when the destination moved away).
                let _ = fs.rename(&src, &format!("/r/p{dst_parent}/child/m{t}"));
            });
        }
    });
    // Whatever happened, the namespace must be loop-free: every directory
    // walks up to the root in bounded steps. A full recursive walk from the
    // root must terminate and find every remaining dir exactly once.
    fn walk(fs: &dyn FileSystem, path: &str, depth: usize, count: &mut usize) {
        assert!(depth < 32, "directory loop detected at {path}");
        for e in fs.readdir(path).unwrap() {
            if e.ftype == cfs_types::FileType::Dir {
                *count += 1;
                let child = format!("{path}/{}", e.name);
                walk(fs, &child, depth + 1, count);
            }
        }
    }
    let mut dirs = 0;
    walk(&fs, "/r", 0, &mut dirs);
    assert_eq!(dirs, 6, "all six directories still reachable exactly once");
}

#[test]
fn rename_nonexistent_destination_parent_fails_cleanly() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/src").unwrap();
    fs.create("/src/f").unwrap();
    assert_eq!(
        fs.rename("/src/f", "/nosuch/f").unwrap_err(),
        FsError::NotFound
    );
    // Source untouched after the failed rename.
    assert!(fs.lookup("/src/f").is_ok());
    assert_eq!(fs.getattr("/src").unwrap().children, 1);
}

#[test]
fn rename_survives_filestore_node_failover() {
    let c = cluster();
    let fs = c.client();
    fs.mkdir("/m1").unwrap();
    fs.mkdir("/m2").unwrap();
    fs.create("/m1/f").unwrap();
    fs.create("/m2/f").unwrap(); // destination to be replaced
                                 // Kill a FileStore leader: the replaced file's attribute deletion must
                                 // retry against the new leader.
    let victim = c.fs_groups()[0].raft().leader().unwrap();
    c.network().kill(victim.id());
    fs.rename("/m1/f", "/m2/f").unwrap();
    assert_eq!(fs.getattr("/m2").unwrap().children, 1);
    assert_eq!(fs.getattr("/m1").unwrap().children, 0);
    let _ = Duration::from_secs(0);
}
